//! The deduplication engine: DDFS's S1→S4 metadata workflow (§7.4.1).
//!
//! For every incoming (ciphertext) chunk `C`:
//!
//! * **S1** — check the in-memory fingerprint cache; a hit means duplicate.
//! * *(buffer)* — check the open, not-yet-sealed container (in-memory, free);
//!   DDFS keeps just-written chunks visible, otherwise duplicates arriving
//!   before the first flush would be stored twice.
//! * **S2** — miss the Bloom filter ⇒ definitely unique: update the Bloom
//!   filter and append `C` to the open container; when the container fills
//!   up it is sealed and its fingerprints are written to the on-disk index
//!   (*update access*).
//! * **S3** — Bloom hit may be a false positive: query the on-disk
//!   fingerprint index (*index access*); a miss stores `C` as in S2.
//! * **S4** — index hit: `C` is a duplicate; prefetch all fingerprints of
//!   its container into the cache (*loading access*), evicting
//!   least-recently-used entries when full.
//!
//! ## Durability
//!
//! With [`DedupConfig::persist`] set, the engine is backed by a directory:
//! every sealed container is written to its own [log file](crate::log) and
//! committed by a [manifest journal](crate::manifest) record, and
//! [`DedupEngine::close`] (or an interval policy applied at
//! [`DedupEngine::finish`]) writes an index + counters snapshot.
//! [`DedupEngine::open`] recovers the directory back into a running engine
//! — bit-identically after a clean close, and to the last consistent
//! sealed state after a crash (torn tail writes are detected and rolled
//! back). See `DESIGN.md` §7 for the format and the recovery invariant.

use freqdedup_trace::{Backup, ChunkRecord, Fingerprint};

use crate::bloom::BloomFilter;
use crate::cache::FingerprintCache;
use crate::container::{ContainerId, ContainerStore, PayloadMode};
use crate::index::FingerprintIndex;
use crate::log;
use crate::manifest::{self, ManifestEvent, ManifestWriter, Snapshot};
use crate::persist::{self, FsyncPolicy, MetaKind, PersistConfig, PersistError, StoreMeta};
use crate::stats::{MetadataAccess, StoreStats};

/// Engine configuration. Defaults follow the paper's prototype (§7.4.2):
/// 4 MB containers, 32-byte fingerprint metadata entries, 1% Bloom
/// false-positive rate, no persistence.
#[derive(Clone, Debug)]
pub struct DedupConfig {
    /// Container capacity in bytes.
    pub container_bytes: u64,
    /// Fingerprint cache capacity, in entries (bytes / entry_bytes).
    pub cache_entries: usize,
    /// Metadata entry size in bytes (32 in the paper).
    pub entry_bytes: u64,
    /// Expected number of distinct fingerprints (Bloom sizing).
    pub bloom_expected: u64,
    /// Bloom filter target false-positive rate.
    pub bloom_fp_rate: f64,
    /// Fingerprint-prefix shards of the on-disk index (1 = the paper's
    /// single-map layout; see [`crate::index::FingerprintIndex`]).
    pub index_shards: usize,
    /// Durable backing directory; `None` keeps the engine purely in-memory
    /// (the behaviour of every release before the persistence layer).
    pub persist: Option<PersistConfig>,
}

impl DedupConfig {
    /// The paper's configuration with a cache byte budget (512 MB or 4 GB in
    /// §7.4.2) and an expected fingerprint population for Bloom sizing.
    #[must_use]
    pub fn paper(cache_bytes: u64, bloom_expected: u64) -> Self {
        DedupConfig {
            container_bytes: 4 * 1024 * 1024,
            cache_entries: (cache_bytes / 32) as usize,
            entry_bytes: 32,
            bloom_expected,
            bloom_fp_rate: 0.01,
            index_shards: 1,
            persist: None,
        }
    }

    /// Sets the persistence backing (builder style).
    #[must_use]
    pub fn persist(mut self, persist: PersistConfig) -> Self {
        self.persist = Some(persist);
        self
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if self.container_bytes == 0 {
            return Err("container_bytes must be positive".into());
        }
        if self.entry_bytes == 0 {
            return Err("entry_bytes must be positive".into());
        }
        if self.bloom_expected == 0 {
            return Err("bloom_expected must be positive".into());
        }
        if !(self.bloom_fp_rate > 0.0 && self.bloom_fp_rate < 1.0) {
            return Err("bloom_fp_rate must be in (0, 1)".into());
        }
        if self.index_shards == 0 {
            return Err("index_shards must be positive".into());
        }
        Ok(())
    }

    /// The `store.meta` echo of this configuration for a single engine.
    fn meta(&self) -> StoreMeta {
        StoreMeta {
            kind: MetaKind::Engine,
            shards: 1,
            entry_bytes: self.entry_bytes,
            index_shards: self.index_shards as u32,
            container_bytes: self.container_bytes,
        }
    }
}

impl Default for DedupConfig {
    fn default() -> Self {
        Self::paper(512 * 1024 * 1024, 10_000_000)
    }
}

/// How a chunk was classified by the engine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChunkOutcome {
    /// Duplicate found in the fingerprint cache (S1).
    DuplicateCache,
    /// Duplicate found in the open container buffer.
    DuplicateBuffer,
    /// Duplicate confirmed by the on-disk index (S4).
    DuplicateIndex,
    /// Unique chunk, stored (S2/S3).
    Unique,
}

impl ChunkOutcome {
    /// Whether the chunk was a duplicate.
    #[must_use]
    pub fn is_duplicate(self) -> bool {
        !matches!(self, ChunkOutcome::Unique)
    }
}

/// The live persistence handles of a durable engine.
#[derive(Debug)]
struct PersistState {
    cfg: PersistConfig,
    manifest: ManifestWriter,
    seals_since_snapshot: u32,
}

/// The DDFS-like deduplication engine.
///
/// # Example
///
/// ```
/// use freqdedup_store::engine::{DedupConfig, DedupEngine};
/// use freqdedup_trace::ChunkRecord;
///
/// let mut engine = DedupEngine::new(DedupConfig::paper(1 << 20, 1000)).unwrap();
/// let a = engine.process(ChunkRecord::new(1u64, 4096));
/// let b = engine.process(ChunkRecord::new(1u64, 4096));
/// assert!(!a.is_duplicate());
/// assert!(b.is_duplicate());
/// engine.finish();
/// assert_eq!(engine.stats().unique_chunks, 1);
/// ```
#[derive(Debug)]
pub struct DedupEngine {
    config: DedupConfig,
    bloom: BloomFilter,
    cache: FingerprintCache,
    containers: ContainerStore,
    index: FingerprintIndex,
    loading_bytes: u64,
    loading_ops: u64,
    stats: StoreStats,
    persist: Option<PersistState>,
}

impl DedupEngine {
    /// Builds an engine from a validated configuration ([`Self::open`] with
    /// the error stringified — kept for source compatibility).
    ///
    /// # Errors
    ///
    /// Returns the display form of the [`Self::open`] error.
    pub fn new(config: DedupConfig) -> Result<Self, String> {
        Self::open(config).map_err(|e| e.to_string())
    }

    /// Opens an engine. With [`DedupConfig::persist`] unset this is a pure
    /// in-memory construction; with it set, the backing directory is
    /// created on first use and **recovered** on every later open — the
    /// engine resumes exactly where [`Self::close`] left it (or at the last
    /// consistent sealed state after a crash).
    ///
    /// # Errors
    ///
    /// * [`PersistError::InvalidConfig`] — [`DedupConfig::validate`] failed;
    /// * [`PersistError::ConfigMismatch`] — the directory was created under
    ///   an incompatible configuration;
    /// * [`PersistError::Corrupt`] / [`PersistError::Torn`] — the directory
    ///   violates the recovery invariant beyond the tolerated torn tail;
    /// * [`PersistError::Io`] — filesystem failure.
    pub fn open(config: DedupConfig) -> Result<Self, PersistError> {
        config.validate().map_err(PersistError::InvalidConfig)?;
        let engine = DedupEngine {
            bloom: BloomFilter::with_capacity(config.bloom_expected, config.bloom_fp_rate),
            cache: FingerprintCache::new(config.cache_entries),
            containers: ContainerStore::new(config.container_bytes),
            index: FingerprintIndex::with_shards(config.entry_bytes, config.index_shards),
            loading_bytes: 0,
            loading_ops: 0,
            stats: StoreStats::default(),
            persist: None,
            config,
        };
        let Some(pcfg) = engine.config.persist.clone() else {
            return Ok(engine);
        };
        std::fs::create_dir_all(&pcfg.dir)?;
        if manifest::manifest_exists(&pcfg.dir) {
            Self::recover(engine, pcfg)
        } else {
            // Fresh directory (or one that died between meta and manifest
            // creation, before any data was accepted): initialize it. An
            // existing meta must agree first — a sharded root, say, has a
            // meta but no top-level manifest, and blindly re-initializing
            // would clobber it.
            persist::ensure_meta(&pcfg.dir, &engine.config.meta(), pcfg.fsync, &pcfg.io)?;
            let manifest = ManifestWriter::create(&pcfg.dir, pcfg.fsync, &pcfg.io)?;
            let mut engine = engine;
            engine.persist = Some(PersistState {
                cfg: pcfg,
                manifest,
                seals_since_snapshot: 0,
            });
            Ok(engine)
        }
    }

    /// Rebuilds a fresh `engine` from the persistent directory state.
    fn recover(mut engine: DedupEngine, pcfg: PersistConfig) -> Result<Self, PersistError> {
        let dir = pcfg.dir.clone();
        let meta = persist::read_meta(&dir)?;
        let want = engine.config.meta();
        if meta != want {
            return Err(PersistError::ConfigMismatch(format!(
                "directory was created as {meta:?}, opened as {want:?}"
            )));
        }

        // 1. The manifest journal is the container catalog: replay it
        //    (tolerating a torn tail record), requiring dense seal ids.
        let scan = manifest::scan_manifest(&dir)?;
        let mut seal_ends = Vec::new();
        for (event, &end) in scan.events.iter().zip(&scan.record_ends) {
            match *event {
                ManifestEvent::Seal { id, .. } => {
                    if id as usize != seal_ends.len() {
                        return Err(PersistError::Corrupt(format!(
                            "manifest seal ids not dense: expected {}, found {id}",
                            seal_ends.len()
                        )));
                    }
                    seal_ends.push(end);
                }
                ManifestEvent::Delete { id } => {
                    return Err(PersistError::Corrupt(format!(
                        "manifest records delete of container {id}, which this engine \
                         version never emits"
                    )));
                }
            }
        }
        let n_seals = seal_ends.len();

        // 2. Load the container log files. Only the *last* sealed container
        //    may be torn or missing (a crash mid-seal); anything earlier is
        //    hard corruption.
        let mut containers = Vec::with_capacity(n_seals);
        for id in 0..n_seals {
            match log::read_container(&dir, ContainerId(id as u32)) {
                Ok(c) => containers.push(c),
                Err(e) => {
                    let tolerable = matches!(&e, PersistError::Torn { .. })
                        || matches!(&e, PersistError::Io(io)
                            if io.kind() == std::io::ErrorKind::NotFound);
                    if tolerable && id == n_seals - 1 {
                        break; // roll the torn tail seal back
                    }
                    return match e {
                        PersistError::Torn { file, detail } => Err(PersistError::Corrupt(format!(
                            "{file}: torn write on a non-tail container ({detail})"
                        ))),
                        other => Err(other),
                    };
                }
            }
        }
        let recovered_n = containers.len();

        // 3. Truncate the manifest back to the recovered prefix (dropping
        //    the torn tail record and/or a rolled-back seal), and clear the
        //    stale log file of a rolled-back container so the next seal of
        //    that id starts clean.
        let valid_len = if recovered_n == 0 {
            6 // header only
        } else {
            seal_ends[recovered_n - 1]
        };
        let valid_len = if recovered_n == n_seals {
            scan.valid_len // keep non-seal bytes? (none today) — tail garbage only
        } else {
            valid_len
        };
        let manifest = ManifestWriter::reopen(&dir, valid_len, pcfg.fsync, &pcfg.io)?;
        if recovered_n < n_seals {
            let _ =
                std::fs::remove_file(log::container_path(&dir, ContainerId(recovered_n as u32)));
        }

        // 4. Restore the container catalog (payload mode from the recovered
        //    files; undecided when the store is still empty).
        let mode = containers.first().map(|c| {
            if c.has_payload() {
                PayloadMode::Payload
            } else {
                PayloadMode::Metadata
            }
        });
        engine.containers =
            ContainerStore::restore(engine.config.container_bytes, mode, containers);

        // 5. Base state from the snapshot — but only when it does not claim
        //    containers beyond the recovered prefix (a snapshot "from the
        //    future" relative to a torn store is discarded wholesale: its
        //    flow counters and cache image describe state that was lost).
        let snapshot = manifest::read_snapshot(&dir)?;
        let usable = match snapshot {
            Some(s) if s.seal_seq <= recovered_n as u64 => Some(s),
            Some(_) => {
                // Snapshot "from the future": it describes containers that
                // did not survive. Remove it — once this id space is
                // re-sealed with new data, a later recovery could otherwise
                // adopt the stale image as a valid-looking base.
                manifest::remove_snapshot(&dir, pcfg.fsync)?;
                None
            }
            None => None,
        };
        let base_seq = match usable {
            Some(s) => {
                if s.entry_bytes != engine.config.entry_bytes
                    || s.index_shards as usize != engine.config.index_shards
                {
                    return Err(PersistError::ConfigMismatch(
                        "snapshot was written under a different index configuration".into(),
                    ));
                }
                if s.shard_counters.len() != engine.config.index_shards {
                    return Err(PersistError::Corrupt(format!(
                        "snapshot carries {} shard counter rows for {} shards",
                        s.shard_counters.len(),
                        engine.config.index_shards
                    )));
                }
                engine.stats = StoreStats::from_array(s.stats);
                engine.loading_bytes = s.loading_bytes;
                engine.loading_ops = s.loading_ops;
                for &(fp, cid) in &s.index_entries {
                    engine
                        .index
                        .restore_entry(Fingerprint(fp), ContainerId(cid));
                }
                engine.index.set_shard_counters(&s.shard_counters);
                let lru: Vec<Fingerprint> = s.cache_lru.iter().map(|&fp| Fingerprint(fp)).collect();
                engine
                    .cache
                    .restore(&lru, s.cache_hits, s.cache_misses, s.cache_evictions);
                s.seal_seq as usize
            }
            None => 0,
        };

        // 6. Replay containers beyond the snapshot into the index (with
        //    accounting, mirroring the live seal path) and derive the
        //    storage-side stat deltas. Flow counters (logical chunks,
        //    duplicate hits, lookups) for the replayed span are not in the
        //    container files and stay at their snapshot values — see the
        //    recovery invariant in DESIGN.md §7.
        for id in base_seq..recovered_n {
            let cid = ContainerId(id as u32);
            let container = engine.containers.get(cid).expect("recovered container");
            engine.stats.unique_chunks += container.len() as u64;
            engine.stats.unique_bytes += container.data_bytes;
            engine.stats.containers_sealed += 1;
            for &fp in &container.fingerprints {
                engine.index.insert(fp, cid);
            }
        }

        // 7. Rebuild the Bloom filter from every stored fingerprint — the
        //    bit array is insertion-order-independent, so this reproduces
        //    the filter of an engine that stored exactly these chunks.
        for container in engine.containers.iter() {
            for &fp in &container.fingerprints {
                engine.bloom.insert(fp);
            }
        }

        engine.persist = Some(PersistState {
            seals_since_snapshot: (recovered_n - base_seq) as u32,
            cfg: pcfg,
            manifest,
        });
        Ok(engine)
    }

    /// Processes one chunk without payload (trace-driven mode).
    ///
    /// # Panics
    ///
    /// Panics when the engine previously stored payload-bearing chunks
    /// (mixed-mode ingestion, see [`crate::container::PayloadMode`]), or —
    /// for a persistent engine — when a container/manifest write fails.
    pub fn process(&mut self, record: ChunkRecord) -> ChunkOutcome {
        self.process_inner(record, None)
    }

    /// Processes one chunk storing its payload bytes (content mode).
    ///
    /// # Panics
    ///
    /// Debug-panics when `payload.len() != record.size`. Panics when the
    /// engine previously stored metadata-only chunks (mixed-mode
    /// ingestion), or — for a persistent engine — when a container/manifest
    /// write fails.
    pub fn process_with_payload(&mut self, record: ChunkRecord, payload: &[u8]) -> ChunkOutcome {
        self.process_inner(record, Some(payload))
    }

    fn process_inner(&mut self, record: ChunkRecord, payload: Option<&[u8]>) -> ChunkOutcome {
        self.stats.logical_chunks += 1;
        self.stats.logical_bytes += u64::from(record.size);

        // S1: fingerprint cache.
        if self.cache.lookup(record.fp) {
            self.stats.dup_cache_hits += 1;
            return ChunkOutcome::DuplicateCache;
        }

        // Open-container buffer (in-memory, not part of the accounted flow).
        if self.containers.open_contains(record.fp) {
            self.stats.dup_buffer_hits += 1;
            return ChunkOutcome::DuplicateBuffer;
        }

        // S2: Bloom filter.
        if !self.bloom.contains(record.fp) {
            self.store_unique(record, payload);
            return ChunkOutcome::Unique;
        }

        // S3: on-disk index (the Bloom hit may be a false positive).
        match self.index.lookup(record.fp) {
            None => {
                self.stats.bloom_false_positives += 1;
                self.store_unique(record, payload);
                ChunkOutcome::Unique
            }
            Some(container_id) => {
                // S4: duplicate — prefetch the container's fingerprints.
                self.stats.dup_index_hits += 1;
                let container = self
                    .containers
                    .get(container_id)
                    .expect("index points at sealed container");
                self.loading_bytes += self.config.entry_bytes * container.len() as u64;
                self.loading_ops += 1;
                // Clone is bounded by container size (≤ ~1k fingerprints).
                let fps = container.fingerprints.clone();
                self.cache.insert_container(&fps);
                ChunkOutcome::DuplicateIndex
            }
        }
    }

    fn store_unique(&mut self, record: ChunkRecord, payload: Option<&[u8]>) {
        self.stats.unique_chunks += 1;
        self.stats.unique_bytes += u64::from(record.size);
        self.bloom.insert(record.fp);
        let sealed = self
            .containers
            .append(record, payload)
            .unwrap_or_else(|e| panic!("DedupEngine: {e}"));
        if let Some(sealed_id) = sealed {
            self.on_sealed(sealed_id);
        }
    }

    fn on_sealed(&mut self, id: ContainerId) {
        self.stats.containers_sealed += 1;
        let fps = self
            .containers
            .get(id)
            .expect("just sealed")
            .fingerprints
            .clone();
        for fp in fps {
            self.index.insert(fp, id);
        }
        if let Some(p) = &mut self.persist {
            // Write-ahead ordering: the container file is made durable
            // first, then the manifest record commits the seal.
            let container = self.containers.get(id).expect("just sealed");
            log::write_container(&p.cfg.dir, container, p.cfg.fsync, &p.cfg.io)
                .unwrap_or_else(|e| panic!("persistent store: container write failed: {e}"));
            p.manifest
                .append_seal(id.0, container.len() as u32, container.data_bytes)
                .unwrap_or_else(|e| panic!("persistent store: manifest append failed: {e}"));
            p.seals_since_snapshot += 1;
        }
    }

    /// Ingests a whole backup in logical order.
    pub fn ingest_backup(&mut self, backup: &Backup) {
        for &record in backup {
            self.process(record);
        }
    }

    /// Seals the open container and indexes its chunks. Call once after the
    /// final backup (the engine remains usable afterwards).
    ///
    /// For a persistent engine this is also the interval-snapshot point: a
    /// snapshot is written when [`PersistConfig::snapshot_every_seals`]
    /// containers have been sealed since the last one (`finish` is the
    /// first moment the open container is empty, which is what makes the
    /// snapshot image consistent).
    ///
    /// # Panics
    ///
    /// Panics when a persistent engine fails to write the container log,
    /// manifest record or snapshot.
    pub fn finish(&mut self) {
        if let Some(id) = self.containers.flush() {
            self.on_sealed(id);
        }
        let due = self.persist.as_ref().is_some_and(|p| {
            p.cfg.snapshot_every_seals > 0 && p.seals_since_snapshot >= p.cfg.snapshot_every_seals
        });
        if due {
            self.write_snapshot_now()
                .unwrap_or_else(|e| panic!("persistent store: snapshot write failed: {e}"));
        }
    }

    /// Seals the open container and writes a snapshot now (a durable
    /// checkpoint). No-op beyond [`Self::finish`] for in-memory engines.
    ///
    /// # Errors
    ///
    /// Returns [`PersistError::Io`] on write failure.
    pub fn checkpoint(&mut self) -> Result<(), PersistError> {
        if let Some(id) = self.containers.flush() {
            self.on_sealed(id);
        }
        self.write_snapshot_now()
    }

    /// Flushes, snapshots and consumes the engine: after `close` returns,
    /// [`Self::open`] on the same directory resumes bit-identically.
    ///
    /// A graceful close is also a **durability upgrade**: even under
    /// [`crate::persist::FsyncPolicy::Never`], every container log, the
    /// manifest journal, the snapshot and the directory entry are fsynced
    /// once here — so a SHUTDOWN / Ctrl-C path that reaches `close` never
    /// relies on crash recovery, regardless of the run-time fsync policy.
    ///
    /// # Errors
    ///
    /// Returns [`PersistError::Io`] on write failure.
    pub fn close(mut self) -> Result<(), PersistError> {
        self.checkpoint()?;
        self.sync_for_close()
    }

    /// One-shot unconditional fsync of all persistence files (see
    /// [`Self::close`]). No-op for in-memory engines and under
    /// [`crate::persist::FsyncPolicy::Always`], where every write was
    /// already durable.
    fn sync_for_close(&self) -> Result<(), PersistError> {
        let Some(p) = &self.persist else {
            return Ok(());
        };
        if p.cfg.fsync == FsyncPolicy::Always {
            return Ok(());
        }
        let dir = &p.cfg.dir;
        for id in 0..self.containers.sealed_count() {
            let path = log::container_path(dir, ContainerId(id as u32));
            std::fs::File::open(path)?.sync_data()?;
        }
        manifest::sync_manifest_files(dir)?;
        persist::maybe_sync_dir(dir, FsyncPolicy::Always)
    }

    fn write_snapshot_now(&mut self) -> Result<(), PersistError> {
        let Some(p) = &mut self.persist else {
            return Ok(());
        };
        debug_assert_eq!(
            self.containers.open_len(),
            0,
            "snapshot at an inconsistent point (open container not empty)"
        );
        let snapshot = Snapshot {
            seal_seq: self.containers.sealed_count() as u64,
            entry_bytes: self.config.entry_bytes,
            index_shards: self.config.index_shards as u32,
            stats: self.stats.to_array(),
            loading_bytes: self.loading_bytes,
            loading_ops: self.loading_ops,
            shard_counters: self
                .index
                .shard_stats()
                .iter()
                .map(|s| [s.lookups, s.lookup_bytes, s.updates, s.update_bytes])
                .collect(),
            index_entries: self
                .index
                .sorted_entries()
                .into_iter()
                .map(|(fp, cid)| (fp.value(), cid.0))
                .collect(),
            cache_hits: self.cache.hits(),
            cache_misses: self.cache.misses(),
            cache_evictions: self.cache.evictions(),
            cache_lru: self
                .cache
                .lru_to_mru()
                .into_iter()
                .map(Fingerprint::value)
                .collect(),
        };
        manifest::write_snapshot(&p.cfg.dir, &snapshot, p.cfg.fsync, &p.cfg.io)?;
        p.seals_since_snapshot = 0;
        Ok(())
    }

    /// Deduplication counters.
    #[must_use]
    pub fn stats(&self) -> StoreStats {
        self.stats
    }

    /// Metadata access totals (cumulative; subtract snapshots for
    /// per-backup deltas).
    #[must_use]
    pub fn metadata_access(&self) -> MetadataAccess {
        MetadataAccess {
            update_bytes: self.index.update_bytes(),
            index_bytes: self.index.lookup_bytes(),
            loading_bytes: self.loading_bytes,
        }
    }

    /// Number of container prefetch operations (S4 executions).
    #[must_use]
    pub fn loading_ops(&self) -> u64 {
        self.loading_ops
    }

    /// Reads back a stored chunk's payload (content mode only), borrowed
    /// straight from the container extent — no copy. Returns `None` for
    /// unknown fingerprints or metadata-only ingestion. Callers needing an
    /// owned buffer convert with `.map(<[u8]>::to_vec)`.
    #[must_use]
    pub fn read_chunk(&self, fp: Fingerprint) -> Option<&[u8]> {
        if let Some(bytes) = self.containers.open_payload_of(fp) {
            return Some(bytes);
        }
        let container_id = self.index.peek(fp)?;
        let container = self.containers.get(container_id)?;
        let position = container.fingerprints.iter().position(|&f| f == fp)?;
        container.chunk_payload(position)
    }

    /// The fingerprint cache (inspection).
    #[must_use]
    pub fn cache(&self) -> &FingerprintCache {
        &self.cache
    }

    /// The container store (inspection).
    #[must_use]
    pub fn containers(&self) -> &ContainerStore {
        &self.containers
    }

    /// The fingerprint index (inspection).
    #[must_use]
    pub fn index(&self) -> &FingerprintIndex {
        &self.index
    }

    /// The engine configuration.
    #[must_use]
    pub fn config(&self) -> &DedupConfig {
        &self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::persist::FsyncPolicy;
    use std::path::PathBuf;

    fn rec(fp: u64, size: u32) -> ChunkRecord {
        ChunkRecord::new(fp, size)
    }

    fn small_config(cache_entries: usize) -> DedupConfig {
        DedupConfig {
            container_bytes: 64,
            cache_entries,
            entry_bytes: 32,
            bloom_expected: 10_000,
            bloom_fp_rate: 0.01,
            index_shards: 1,
            persist: None,
        }
    }

    fn small_engine(cache_entries: usize) -> DedupEngine {
        DedupEngine::new(small_config(cache_entries)).unwrap()
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("freqdedup-engine-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn unique_then_buffer_duplicate() {
        let mut e = small_engine(16);
        assert_eq!(e.process(rec(1, 16)), ChunkOutcome::Unique);
        // Still in the open container: buffer hit, not index.
        assert_eq!(e.process(rec(1, 16)), ChunkOutcome::DuplicateBuffer);
    }

    #[test]
    fn index_duplicate_after_seal_then_cache() {
        let mut e = small_engine(16);
        // Fill container (64 bytes) with 4×16B chunks, then one more to seal.
        for i in 0..4 {
            assert_eq!(e.process(rec(i, 16)), ChunkOutcome::Unique);
        }
        assert_eq!(e.process(rec(100, 16)), ChunkOutcome::Unique); // seals 0..4
        assert_eq!(e.stats().containers_sealed, 1);

        // fp 0 now only reachable via the index.
        assert_eq!(e.process(rec(0, 16)), ChunkOutcome::DuplicateIndex);
        // Prefetch brought neighbours into the cache: S1 hit now.
        assert_eq!(e.process(rec(1, 16)), ChunkOutcome::DuplicateCache);
        assert_eq!(e.process(rec(0, 16)), ChunkOutcome::DuplicateCache);
    }

    #[test]
    fn accounting_matches_workflow() {
        let mut e = small_engine(16);
        for i in 0..4 {
            e.process(rec(i, 16));
        }
        e.process(rec(100, 16)); // seal container of 4 chunks
        let m = e.metadata_access();
        assert_eq!(m.update_bytes, 4 * 32, "4 index entries written");
        assert_eq!(m.index_bytes, 0, "no index lookups yet");
        assert_eq!(m.loading_bytes, 0);

        e.process(rec(0, 16)); // S3 lookup + S4 load of 4 fps
        let m = e.metadata_access();
        assert_eq!(m.index_bytes, 32);
        assert_eq!(m.loading_bytes, 4 * 32);
        assert_eq!(e.loading_ops(), 1);
    }

    #[test]
    fn no_double_store() {
        let mut e = small_engine(4);
        let stream: Vec<u64> = vec![1, 2, 3, 4, 5, 1, 2, 3, 4, 5, 1, 2, 3, 4, 5];
        for f in stream {
            e.process(rec(f, 16));
        }
        e.finish();
        assert_eq!(e.stats().unique_chunks, 5);
        assert_eq!(e.stats().logical_chunks, 15);
        assert_eq!(e.stats().duplicates(), 10);
    }

    #[test]
    fn storage_saving_math() {
        let mut e = small_engine(16);
        for f in [1u64, 1, 1, 2] {
            e.process(rec(f, 100));
        }
        let s = e.stats();
        assert_eq!(s.logical_bytes, 400);
        assert_eq!(s.unique_bytes, 200);
        assert!((s.storage_saving() - 0.5).abs() < 1e-12);
        assert!((s.dedup_ratio() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn finish_indexes_tail_chunks() {
        let mut e = small_engine(16);
        e.process(rec(7, 16));
        e.finish();
        // After finish, the chunk is reachable via the index path.
        assert_eq!(e.process(rec(7, 16)), ChunkOutcome::DuplicateIndex);
    }

    #[test]
    fn payload_round_trip_through_engine() {
        let mut e = DedupEngine::new(DedupConfig {
            container_bytes: 32,
            cache_entries: 8,
            entry_bytes: 32,
            bloom_expected: 100,
            bloom_fp_rate: 0.01,
            index_shards: 1,
            persist: None,
        })
        .unwrap();
        e.process_with_payload(rec(1, 5), b"hello");
        e.process_with_payload(rec(2, 5), b"world");
        // Read from open container (borrowed, no copy).
        assert_eq!(e.read_chunk(Fingerprint(1)), Some(&b"hello"[..]));
        e.finish();
        // Read from sealed container via the index.
        assert_eq!(e.read_chunk(Fingerprint(2)), Some(&b"world"[..]));
        assert_eq!(e.read_chunk(Fingerprint(9)), None);
    }

    #[test]
    #[should_panic(expected = "mixed payload modes")]
    fn mixed_mode_ingestion_panics() {
        let mut e = small_engine(16);
        e.process(rec(1, 16));
        e.process_with_payload(rec(2, 5), b"hello");
    }

    #[test]
    fn ingest_backup_convenience() {
        let mut e = small_engine(16);
        let b = Backup::from_chunks("b", vec![rec(1, 8), rec(2, 8), rec(1, 8)]);
        e.ingest_backup(&b);
        assert_eq!(e.stats().logical_chunks, 3);
        assert_eq!(e.stats().unique_chunks, 2);
    }

    #[test]
    fn zero_cache_forces_index_path() {
        let mut e = small_engine(0);
        for i in 0..4 {
            e.process(rec(i, 16));
        }
        e.process(rec(100, 16)); // seal
        assert_eq!(e.process(rec(0, 16)), ChunkOutcome::DuplicateIndex);
        // Cache disabled: the same fp goes through the index again.
        assert_eq!(e.process(rec(0, 16)), ChunkOutcome::DuplicateIndex);
        assert!(e.metadata_access().loading_bytes >= 2 * 4 * 32);
    }

    #[test]
    fn invalid_config_rejected() {
        let c = DedupConfig {
            container_bytes: 0,
            ..DedupConfig::default()
        };
        assert!(DedupEngine::new(c).is_err());
        let c = DedupConfig {
            bloom_fp_rate: 0.0,
            ..DedupConfig::default()
        };
        assert!(DedupEngine::new(c).is_err());
    }

    #[test]
    fn locality_prefetch_reduces_index_traffic() {
        // Two interleaved ingest patterns of the same duplicate set: with
        // locality (sequential repeat) the cache prefetch absorbs most
        // lookups; shuffled access defeats the prefetch only when the cache
        // is too small to hold everything — here we check the sequential
        // case enjoys cache hits.
        let mut e = DedupEngine::new(DedupConfig {
            container_bytes: 1024,
            cache_entries: 1024,
            entry_bytes: 32,
            bloom_expected: 10_000,
            bloom_fp_rate: 0.01,
            index_shards: 1,
            persist: None,
        })
        .unwrap();
        for i in 0..1000u64 {
            e.process(rec(i, 16));
        }
        e.finish();
        for i in 0..1000u64 {
            e.process(rec(i, 16));
        }
        let s = e.stats();
        assert!(s.dup_cache_hits > 900, "cache hits {}", s.dup_cache_hits);
        assert!(s.dup_index_hits < 100, "index hits {}", s.dup_index_hits);
    }

    #[test]
    fn persistent_round_trip_is_bit_identical() {
        let dir = tmp_dir("round-trip");
        let pcfg = PersistConfig::new(&dir).fsync(FsyncPolicy::Never);
        let stream: Vec<ChunkRecord> = (0..300u64)
            .map(|i| rec((i % 90).wrapping_mul(0x9e37_79b9_7f4a_7c15), 16))
            .collect();

        // Reference: an engine that never restarts.
        let mut live = DedupEngine::new(small_config(16)).unwrap();
        for &r in &stream {
            live.process(r);
        }
        live.finish();

        // Durable twin: same stream, then close + reopen.
        let mut durable = DedupEngine::open(DedupConfig {
            persist: Some(pcfg.clone()),
            ..small_config(16)
        })
        .unwrap();
        for &r in &stream {
            durable.process(r);
        }
        durable.finish();
        let want_stats = durable.stats();
        durable.close().unwrap();

        let mut reopened = DedupEngine::open(DedupConfig {
            persist: Some(pcfg),
            ..small_config(16)
        })
        .unwrap();
        assert_eq!(reopened.stats(), want_stats);
        assert_eq!(reopened.stats(), live.stats());
        assert_eq!(reopened.metadata_access(), live.metadata_access());
        assert_eq!(
            reopened.index().sorted_entries(),
            live.index().sorted_entries()
        );
        assert_eq!(reopened.cache().lru_to_mru(), live.cache().lru_to_mru());

        // Subsequent ingest behaves identically on both.
        for &r in &stream {
            assert_eq!(reopened.process(r), live.process(r));
        }
        assert_eq!(reopened.stats(), live.stats());
        assert_eq!(reopened.metadata_access(), live.metadata_access());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reopen_under_different_config_rejected() {
        let dir = tmp_dir("config-mismatch");
        let pcfg = PersistConfig::new(&dir).fsync(FsyncPolicy::Never);
        let e = DedupEngine::open(DedupConfig {
            persist: Some(pcfg.clone()),
            ..small_config(16)
        })
        .unwrap();
        e.close().unwrap();
        let err = DedupEngine::open(DedupConfig {
            container_bytes: 128, // was 64
            persist: Some(pcfg),
            ..small_config(16)
        })
        .unwrap_err();
        assert!(matches!(err, PersistError::ConfigMismatch(_)));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn crash_without_close_recovers_sealed_prefix() {
        let dir = tmp_dir("no-close");
        let pcfg = PersistConfig::new(&dir).fsync(FsyncPolicy::Never);
        let mut e = DedupEngine::open(DedupConfig {
            persist: Some(pcfg.clone()),
            ..small_config(16)
        })
        .unwrap();
        // 9 unique 16-byte chunks: two sealed containers (4 chunks each)
        // plus one chunk left in the open container, then "crash" (drop).
        for i in 0..9u64 {
            e.process(rec(i, 16));
        }
        assert_eq!(e.stats().containers_sealed, 2);
        drop(e);

        let r = DedupEngine::open(DedupConfig {
            persist: Some(pcfg),
            ..small_config(16)
        })
        .unwrap();
        // The open-container chunk is gone; the sealed state survives.
        assert_eq!(r.stats().containers_sealed, 2);
        assert_eq!(r.stats().unique_chunks, 8);
        assert_eq!(r.stats().unique_bytes, 8 * 16);
        assert_eq!(r.index().len(), 8);
        assert_eq!(r.containers().sealed_count(), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
