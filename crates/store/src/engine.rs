//! The deduplication engine: DDFS's S1→S4 metadata workflow (§7.4.1).
//!
//! For every incoming (ciphertext) chunk `C`:
//!
//! * **S1** — check the in-memory fingerprint cache; a hit means duplicate.
//! * *(buffer)* — check the open, not-yet-sealed container (in-memory, free);
//!   DDFS keeps just-written chunks visible, otherwise duplicates arriving
//!   before the first flush would be stored twice.
//! * **S2** — miss the Bloom filter ⇒ definitely unique: update the Bloom
//!   filter and append `C` to the open container; when the container fills
//!   up it is sealed and its fingerprints are written to the on-disk index
//!   (*update access*).
//! * **S3** — Bloom hit may be a false positive: query the on-disk
//!   fingerprint index (*index access*); a miss stores `C` as in S2.
//! * **S4** — index hit: `C` is a duplicate; prefetch all fingerprints of
//!   its container into the cache (*loading access*), evicting
//!   least-recently-used entries when full.

use freqdedup_trace::{Backup, ChunkRecord, Fingerprint};

use crate::bloom::BloomFilter;
use crate::cache::FingerprintCache;
use crate::container::ContainerStore;
use crate::index::FingerprintIndex;
use crate::stats::{MetadataAccess, StoreStats};

/// Engine configuration. Defaults follow the paper's prototype (§7.4.2):
/// 4 MB containers, 32-byte fingerprint metadata entries, 1% Bloom
/// false-positive rate.
#[derive(Clone, Debug)]
pub struct DedupConfig {
    /// Container capacity in bytes.
    pub container_bytes: u64,
    /// Fingerprint cache capacity, in entries (bytes / entry_bytes).
    pub cache_entries: usize,
    /// Metadata entry size in bytes (32 in the paper).
    pub entry_bytes: u64,
    /// Expected number of distinct fingerprints (Bloom sizing).
    pub bloom_expected: u64,
    /// Bloom filter target false-positive rate.
    pub bloom_fp_rate: f64,
    /// Fingerprint-prefix shards of the on-disk index (1 = the paper's
    /// single-map layout; see [`crate::index::FingerprintIndex`]).
    pub index_shards: usize,
}

impl DedupConfig {
    /// The paper's configuration with a cache byte budget (512 MB or 4 GB in
    /// §7.4.2) and an expected fingerprint population for Bloom sizing.
    #[must_use]
    pub fn paper(cache_bytes: u64, bloom_expected: u64) -> Self {
        DedupConfig {
            container_bytes: 4 * 1024 * 1024,
            cache_entries: (cache_bytes / 32) as usize,
            entry_bytes: 32,
            bloom_expected,
            bloom_fp_rate: 0.01,
            index_shards: 1,
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if self.container_bytes == 0 {
            return Err("container_bytes must be positive".into());
        }
        if self.entry_bytes == 0 {
            return Err("entry_bytes must be positive".into());
        }
        if self.bloom_expected == 0 {
            return Err("bloom_expected must be positive".into());
        }
        if !(self.bloom_fp_rate > 0.0 && self.bloom_fp_rate < 1.0) {
            return Err("bloom_fp_rate must be in (0, 1)".into());
        }
        if self.index_shards == 0 {
            return Err("index_shards must be positive".into());
        }
        Ok(())
    }
}

impl Default for DedupConfig {
    fn default() -> Self {
        Self::paper(512 * 1024 * 1024, 10_000_000)
    }
}

/// How a chunk was classified by the engine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChunkOutcome {
    /// Duplicate found in the fingerprint cache (S1).
    DuplicateCache,
    /// Duplicate found in the open container buffer.
    DuplicateBuffer,
    /// Duplicate confirmed by the on-disk index (S4).
    DuplicateIndex,
    /// Unique chunk, stored (S2/S3).
    Unique,
}

impl ChunkOutcome {
    /// Whether the chunk was a duplicate.
    #[must_use]
    pub fn is_duplicate(self) -> bool {
        !matches!(self, ChunkOutcome::Unique)
    }
}

/// The DDFS-like deduplication engine.
///
/// # Example
///
/// ```
/// use freqdedup_store::engine::{DedupConfig, DedupEngine};
/// use freqdedup_trace::ChunkRecord;
///
/// let mut engine = DedupEngine::new(DedupConfig::paper(1 << 20, 1000)).unwrap();
/// let a = engine.process(ChunkRecord::new(1u64, 4096));
/// let b = engine.process(ChunkRecord::new(1u64, 4096));
/// assert!(!a.is_duplicate());
/// assert!(b.is_duplicate());
/// engine.finish();
/// assert_eq!(engine.stats().unique_chunks, 1);
/// ```
#[derive(Debug)]
pub struct DedupEngine {
    config: DedupConfig,
    bloom: BloomFilter,
    cache: FingerprintCache,
    containers: ContainerStore,
    index: FingerprintIndex,
    loading_bytes: u64,
    loading_ops: u64,
    stats: StoreStats,
}

impl DedupEngine {
    /// Builds an engine from a validated configuration.
    ///
    /// # Errors
    ///
    /// Returns the message of [`DedupConfig::validate`] on invalid input.
    pub fn new(config: DedupConfig) -> Result<Self, String> {
        config.validate()?;
        Ok(DedupEngine {
            bloom: BloomFilter::with_capacity(config.bloom_expected, config.bloom_fp_rate),
            cache: FingerprintCache::new(config.cache_entries),
            containers: ContainerStore::new(config.container_bytes),
            index: FingerprintIndex::with_shards(config.entry_bytes, config.index_shards),
            loading_bytes: 0,
            loading_ops: 0,
            stats: StoreStats::default(),
            config,
        })
    }

    /// Processes one chunk without payload (trace-driven mode).
    pub fn process(&mut self, record: ChunkRecord) -> ChunkOutcome {
        self.process_inner(record, None)
    }

    /// Processes one chunk storing its payload bytes (content mode).
    ///
    /// # Panics
    ///
    /// Debug-panics when `payload.len() != record.size`.
    pub fn process_with_payload(&mut self, record: ChunkRecord, payload: &[u8]) -> ChunkOutcome {
        self.process_inner(record, Some(payload))
    }

    fn process_inner(&mut self, record: ChunkRecord, payload: Option<&[u8]>) -> ChunkOutcome {
        self.stats.logical_chunks += 1;
        self.stats.logical_bytes += u64::from(record.size);

        // S1: fingerprint cache.
        if self.cache.lookup(record.fp) {
            self.stats.dup_cache_hits += 1;
            return ChunkOutcome::DuplicateCache;
        }

        // Open-container buffer (in-memory, not part of the accounted flow).
        if self.containers.open_contains(record.fp) {
            self.stats.dup_buffer_hits += 1;
            return ChunkOutcome::DuplicateBuffer;
        }

        // S2: Bloom filter.
        if !self.bloom.contains(record.fp) {
            self.store_unique(record, payload);
            return ChunkOutcome::Unique;
        }

        // S3: on-disk index (the Bloom hit may be a false positive).
        match self.index.lookup(record.fp) {
            None => {
                self.stats.bloom_false_positives += 1;
                self.store_unique(record, payload);
                ChunkOutcome::Unique
            }
            Some(container_id) => {
                // S4: duplicate — prefetch the container's fingerprints.
                self.stats.dup_index_hits += 1;
                let container = self
                    .containers
                    .get(container_id)
                    .expect("index points at sealed container");
                self.loading_bytes += self.config.entry_bytes * container.len() as u64;
                self.loading_ops += 1;
                // Clone is bounded by container size (≤ ~1k fingerprints).
                let fps = container.fingerprints.clone();
                self.cache.insert_container(&fps);
                ChunkOutcome::DuplicateIndex
            }
        }
    }

    fn store_unique(&mut self, record: ChunkRecord, payload: Option<&[u8]>) {
        self.stats.unique_chunks += 1;
        self.stats.unique_bytes += u64::from(record.size);
        self.bloom.insert(record.fp);
        if let Some(sealed_id) = self.containers.append(record, payload) {
            self.on_sealed(sealed_id);
        }
    }

    fn on_sealed(&mut self, id: crate::container::ContainerId) {
        self.stats.containers_sealed += 1;
        let fps = self
            .containers
            .get(id)
            .expect("just sealed")
            .fingerprints
            .clone();
        for fp in fps {
            self.index.insert(fp, id);
        }
    }

    /// Ingests a whole backup in logical order.
    pub fn ingest_backup(&mut self, backup: &Backup) {
        for &record in backup {
            self.process(record);
        }
    }

    /// Seals the open container and indexes its chunks. Call once after the
    /// final backup (the engine remains usable afterwards).
    pub fn finish(&mut self) {
        if let Some(id) = self.containers.flush() {
            self.on_sealed(id);
        }
    }

    /// Deduplication counters.
    #[must_use]
    pub fn stats(&self) -> StoreStats {
        self.stats
    }

    /// Metadata access totals (cumulative; subtract snapshots for
    /// per-backup deltas).
    #[must_use]
    pub fn metadata_access(&self) -> MetadataAccess {
        MetadataAccess {
            update_bytes: self.index.update_bytes(),
            index_bytes: self.index.lookup_bytes(),
            loading_bytes: self.loading_bytes,
        }
    }

    /// Number of container prefetch operations (S4 executions).
    #[must_use]
    pub fn loading_ops(&self) -> u64 {
        self.loading_ops
    }

    /// Reads back a stored chunk's payload (content mode only), borrowed
    /// straight from the container extent — no copy. Returns `None` for
    /// unknown fingerprints or metadata-only ingestion. Callers needing an
    /// owned buffer convert with `.map(<[u8]>::to_vec)`.
    #[must_use]
    pub fn read_chunk(&self, fp: Fingerprint) -> Option<&[u8]> {
        if let Some(bytes) = self.containers.open_payload_of(fp) {
            return Some(bytes);
        }
        let container_id = self.index.peek(fp)?;
        let container = self.containers.get(container_id)?;
        let position = container.fingerprints.iter().position(|&f| f == fp)?;
        container.chunk_payload(position)
    }

    /// The fingerprint cache (inspection).
    #[must_use]
    pub fn cache(&self) -> &FingerprintCache {
        &self.cache
    }

    /// The container store (inspection).
    #[must_use]
    pub fn containers(&self) -> &ContainerStore {
        &self.containers
    }

    /// The engine configuration.
    #[must_use]
    pub fn config(&self) -> &DedupConfig {
        &self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(fp: u64, size: u32) -> ChunkRecord {
        ChunkRecord::new(fp, size)
    }

    fn small_engine(cache_entries: usize) -> DedupEngine {
        DedupEngine::new(DedupConfig {
            container_bytes: 64,
            cache_entries,
            entry_bytes: 32,
            bloom_expected: 10_000,
            bloom_fp_rate: 0.01,
            index_shards: 1,
        })
        .unwrap()
    }

    #[test]
    fn unique_then_buffer_duplicate() {
        let mut e = small_engine(16);
        assert_eq!(e.process(rec(1, 16)), ChunkOutcome::Unique);
        // Still in the open container: buffer hit, not index.
        assert_eq!(e.process(rec(1, 16)), ChunkOutcome::DuplicateBuffer);
    }

    #[test]
    fn index_duplicate_after_seal_then_cache() {
        let mut e = small_engine(16);
        // Fill container (64 bytes) with 4×16B chunks, then one more to seal.
        for i in 0..4 {
            assert_eq!(e.process(rec(i, 16)), ChunkOutcome::Unique);
        }
        assert_eq!(e.process(rec(100, 16)), ChunkOutcome::Unique); // seals 0..4
        assert_eq!(e.stats().containers_sealed, 1);

        // fp 0 now only reachable via the index.
        assert_eq!(e.process(rec(0, 16)), ChunkOutcome::DuplicateIndex);
        // Prefetch brought neighbours into the cache: S1 hit now.
        assert_eq!(e.process(rec(1, 16)), ChunkOutcome::DuplicateCache);
        assert_eq!(e.process(rec(0, 16)), ChunkOutcome::DuplicateCache);
    }

    #[test]
    fn accounting_matches_workflow() {
        let mut e = small_engine(16);
        for i in 0..4 {
            e.process(rec(i, 16));
        }
        e.process(rec(100, 16)); // seal container of 4 chunks
        let m = e.metadata_access();
        assert_eq!(m.update_bytes, 4 * 32, "4 index entries written");
        assert_eq!(m.index_bytes, 0, "no index lookups yet");
        assert_eq!(m.loading_bytes, 0);

        e.process(rec(0, 16)); // S3 lookup + S4 load of 4 fps
        let m = e.metadata_access();
        assert_eq!(m.index_bytes, 32);
        assert_eq!(m.loading_bytes, 4 * 32);
        assert_eq!(e.loading_ops(), 1);
    }

    #[test]
    fn no_double_store() {
        let mut e = small_engine(4);
        let stream: Vec<u64> = vec![1, 2, 3, 4, 5, 1, 2, 3, 4, 5, 1, 2, 3, 4, 5];
        for f in stream {
            e.process(rec(f, 16));
        }
        e.finish();
        assert_eq!(e.stats().unique_chunks, 5);
        assert_eq!(e.stats().logical_chunks, 15);
        assert_eq!(e.stats().duplicates(), 10);
    }

    #[test]
    fn storage_saving_math() {
        let mut e = small_engine(16);
        for f in [1u64, 1, 1, 2] {
            e.process(rec(f, 100));
        }
        let s = e.stats();
        assert_eq!(s.logical_bytes, 400);
        assert_eq!(s.unique_bytes, 200);
        assert!((s.storage_saving() - 0.5).abs() < 1e-12);
        assert!((s.dedup_ratio() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn finish_indexes_tail_chunks() {
        let mut e = small_engine(16);
        e.process(rec(7, 16));
        e.finish();
        // After finish, the chunk is reachable via the index path.
        assert_eq!(e.process(rec(7, 16)), ChunkOutcome::DuplicateIndex);
    }

    #[test]
    fn payload_round_trip_through_engine() {
        let mut e = DedupEngine::new(DedupConfig {
            container_bytes: 32,
            cache_entries: 8,
            entry_bytes: 32,
            bloom_expected: 100,
            bloom_fp_rate: 0.01,
            index_shards: 1,
        })
        .unwrap();
        e.process_with_payload(rec(1, 5), b"hello");
        e.process_with_payload(rec(2, 5), b"world");
        // Read from open container (borrowed, no copy).
        assert_eq!(e.read_chunk(Fingerprint(1)), Some(&b"hello"[..]));
        e.finish();
        // Read from sealed container via the index.
        assert_eq!(e.read_chunk(Fingerprint(2)), Some(&b"world"[..]));
        assert_eq!(e.read_chunk(Fingerprint(9)), None);
    }

    #[test]
    fn ingest_backup_convenience() {
        let mut e = small_engine(16);
        let b = Backup::from_chunks("b", vec![rec(1, 8), rec(2, 8), rec(1, 8)]);
        e.ingest_backup(&b);
        assert_eq!(e.stats().logical_chunks, 3);
        assert_eq!(e.stats().unique_chunks, 2);
    }

    #[test]
    fn zero_cache_forces_index_path() {
        let mut e = small_engine(0);
        for i in 0..4 {
            e.process(rec(i, 16));
        }
        e.process(rec(100, 16)); // seal
        assert_eq!(e.process(rec(0, 16)), ChunkOutcome::DuplicateIndex);
        // Cache disabled: the same fp goes through the index again.
        assert_eq!(e.process(rec(0, 16)), ChunkOutcome::DuplicateIndex);
        assert!(e.metadata_access().loading_bytes >= 2 * 4 * 32);
    }

    #[test]
    fn invalid_config_rejected() {
        let c = DedupConfig {
            container_bytes: 0,
            ..DedupConfig::default()
        };
        assert!(DedupEngine::new(c).is_err());
        let c = DedupConfig {
            bloom_fp_rate: 0.0,
            ..DedupConfig::default()
        };
        assert!(DedupEngine::new(c).is_err());
    }

    #[test]
    fn locality_prefetch_reduces_index_traffic() {
        // Two interleaved ingest patterns of the same duplicate set: with
        // locality (sequential repeat) the cache prefetch absorbs most
        // lookups; shuffled access defeats the prefetch only when the cache
        // is too small to hold everything — here we check the sequential
        // case enjoys cache hits.
        let mut e = DedupEngine::new(DedupConfig {
            container_bytes: 1024,
            cache_entries: 1024,
            entry_bytes: 32,
            bloom_expected: 10_000,
            bloom_fp_rate: 0.01,
            index_shards: 1,
        })
        .unwrap();
        for i in 0..1000u64 {
            e.process(rec(i, 16));
        }
        e.finish();
        for i in 0..1000u64 {
            e.process(rec(i, 16));
        }
        let s = e.stats();
        assert!(s.dup_cache_hits > 900, "cache hits {}", s.dup_cache_hits);
        assert!(s.dup_index_hits < 100, "index hits {}", s.dup_index_hits);
    }
}
