//! The write-ahead manifest journal and the index snapshot.
//!
//! ## Manifest journal (`manifest.log`)
//!
//! An append-only record of container lifecycle events. A container's log
//! file is written **and fsynced first**; the manifest record appended
//! afterwards is what *commits* the seal — a container file without a
//! manifest record is invisible to recovery. Each record carries its own
//! CRC, so a tail record torn by a crash is detected and dropped (the
//! journal is truncated back to its last good record on reopen).
//!
//! ```text
//! header    magic b"FQMJ" (4) + version u16 (= 1)
//! record*   kind u8 (1 = seal, 2 = delete, 3 = backup commit,
//!                    4 = backup delete, 5 = gc drop,
//!                    6 = rekey begin, 7 = rekey commit)
//!           payload length u32
//!           payload bytes
//!           crc u32 over kind + length + payload
//! ```
//!
//! Seal payload: container id `u32`, chunk count `u32`, data bytes `u64`.
//! Delete payload: container id `u32` (a legacy reserved kind — the
//! engine never emits one; GC drops use kind 5, which carries enough to
//! replay the drop's accounting without the dropped file).
//!
//! The lifecycle kinds follow the same write-ahead discipline as seals:
//! a backup's recipe file is durable *before* its commit record, a GC
//! victim's file is unlinked only *after* its drop record is durable, and
//! a rekey is an explicit begin/commit pair so a crash mid-rekey is
//! recognizable (begin without commit ⇒ resume the rewrite).
//!
//! ## Snapshot (`index.snap`)
//!
//! A point-in-time image of the engine's *derived* state — fingerprint
//! index entries, dedup/metadata counters, and the LRU cache order — taken
//! only at consistent points (after [`crate::engine::DedupEngine::finish`],
//! when the open container is empty). The snapshot is written to a
//! temporary file and atomically renamed, so it is always either the old
//! or the new complete image. Recovery loads the snapshot, then replays
//! the manifest events beyond `event_seq` into the index.

use std::fs::{File, OpenOptions};
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};

use freqdedup_trace::io::Crc32;

use crate::fault::{write_checked, FaultAction, FaultFile, IoPolicyHandle, PersistSite};
use crate::persist::{maybe_sync, maybe_sync_dir, CrcSink, CrcSource, FsyncPolicy, PersistError};

pub(crate) const MANIFEST_FILE: &str = "manifest.log";
pub(crate) const SNAPSHOT_FILE: &str = "index.snap";
const MANIFEST_MAGIC: &[u8; 4] = b"FQMJ";
const MANIFEST_VERSION: u16 = 1;
const SNAPSHOT_MAGIC: &[u8; 4] = b"FQSN";
const SNAPSHOT_VERSION: u16 = 2;

const KIND_SEAL: u8 = 1;
const KIND_DELETE: u8 = 2;
const KIND_BACKUP: u8 = 3;
const KIND_BACKUP_DELETE: u8 = 4;
const KIND_GC_DROP: u8 = 5;
const KIND_REKEY_BEGIN: u8 = 6;
const KIND_REKEY_COMMIT: u8 = 7;

/// One manifest journal event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ManifestEvent {
    /// A container was sealed and its log file made durable.
    Seal {
        /// Sealed container id.
        id: u32,
        /// Chunks in the container.
        chunk_count: u32,
        /// Data bytes in the container.
        data_bytes: u64,
    },
    /// A container was deleted (legacy reserved kind — never emitted; GC
    /// uses [`ManifestEvent::GcDrop`]).
    Delete {
        /// Deleted container id.
        id: u32,
    },
    /// A backup was committed: its recipe file is durable and its chunks
    /// now carry references.
    Backup {
        /// Backup id (the client's commit id).
        id: u64,
        /// Logical chunks in the backup.
        chunk_count: u32,
        /// Logical bytes in the backup.
        logical_bytes: u64,
        /// Caller-supplied commit timestamp.
        timestamp: u64,
    },
    /// A committed backup was deleted; the payload echoes its totals so
    /// replay can account the deletion after the recipe file is gone.
    BackupDelete {
        /// Backup id.
        id: u64,
        /// Logical chunks the backup held.
        chunk_count: u32,
        /// Logical bytes the backup held.
        logical_bytes: u64,
    },
    /// GC dropped a container (its live chunks were first re-sealed into
    /// fresh containers, committed by ordinary `Seal` records before this
    /// one). The payload carries the victim's totals and its dead subset
    /// so replay can reproduce the drop's accounting without the file.
    GcDrop {
        /// Dropped container id.
        id: u32,
        /// Chunks the container held.
        chunk_count: u32,
        /// Data bytes the container held.
        data_bytes: u64,
        /// Dead (unreferenced) chunks among them.
        dead_chunks: u32,
        /// Bytes of those dead chunks — the physically reclaimed amount.
        dead_bytes: u64,
    },
    /// A rekey to `epoch` started; live containers may now be a mix of
    /// old and new epochs until the matching commit.
    RekeyBegin {
        /// Target key epoch.
        epoch: u64,
    },
    /// A rekey to `epoch` finished: every live container is rewritten
    /// under the epoch key, and older epoch secrets no longer read
    /// anything.
    RekeyCommit {
        /// Committed key epoch.
        epoch: u64,
    },
}

/// The result of scanning a manifest journal: the valid event prefix and
/// the byte offset where it ends (everything after is a torn tail).
#[derive(Debug)]
pub struct ManifestScan {
    /// Valid events in journal order.
    pub events: Vec<ManifestEvent>,
    /// End offset of each valid record, index-aligned with `events`.
    pub record_ends: Vec<u64>,
    /// Byte length of the valid prefix (header included).
    pub valid_len: u64,
}

fn manifest_path(dir: &Path) -> PathBuf {
    dir.join(MANIFEST_FILE)
}

/// Whether `dir` contains an initialized manifest journal.
#[must_use]
pub fn manifest_exists(dir: &Path) -> bool {
    manifest_path(dir).exists()
}

/// Fsyncs the manifest journal (and snapshot, when present)
/// unconditionally — the graceful-close durability upgrade for
/// [`FsyncPolicy::Never`] stores (see `DedupEngine::close`).
pub(crate) fn sync_manifest_files(dir: &Path) -> Result<(), PersistError> {
    File::open(manifest_path(dir))?.sync_data()?;
    match File::open(snapshot_path(dir)) {
        Ok(file) => file.sync_data()?,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
        Err(e) => return Err(e.into()),
    }
    Ok(())
}

/// Scans the manifest journal under `dir`, tolerating a torn tail: the
/// scan stops at the first record that is truncated or fails its CRC, and
/// reports the valid prefix.
///
/// # Errors
///
/// Returns [`PersistError::Io`] when the journal is missing or unreadable,
/// [`PersistError::BadMagic`] / [`PersistError::BadVersion`] when the
/// header itself is foreign (a journal with a torn *header* is corrupt —
/// the header is written at creation time, before any data is accepted).
pub fn scan_manifest(dir: &Path) -> Result<ManifestScan, PersistError> {
    let file = File::open(manifest_path(dir))?;
    let mut r = BufReader::new(file);
    let mut header = [0u8; 6];
    r.read_exact(&mut header).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            // The header is written at creation, before any data is
            // accepted — a short header is corruption, not a torn tail.
            PersistError::Corrupt("manifest.log: truncated header".to_string())
        } else {
            PersistError::Io(e)
        }
    })?;
    if &header[..4] != MANIFEST_MAGIC {
        return Err(PersistError::BadMagic {
            file: MANIFEST_FILE.to_string(),
        });
    }
    let version = u16::from_le_bytes([header[4], header[5]]);
    if version != MANIFEST_VERSION {
        return Err(PersistError::BadVersion {
            file: MANIFEST_FILE.to_string(),
            version,
        });
    }
    let mut events = Vec::new();
    let mut record_ends = Vec::new();
    let mut offset = 6u64;
    loop {
        match read_record(&mut r) {
            Ok(Some((event, len))) => {
                offset += len;
                events.push(event);
                record_ends.push(offset);
            }
            Ok(None) => break,                 // clean end of journal
            Err(RecordFailure::Torn) => break, // torn tail: drop it, keep the prefix
            // A real read error is NOT a torn tail: classifying it as one
            // would let recovery truncate away durably committed records.
            Err(RecordFailure::Io(e)) => return Err(PersistError::Io(e)),
        }
    }
    Ok(ManifestScan {
        events,
        record_ends,
        valid_len: offset,
    })
}

/// Why one journal record could not be read.
enum RecordFailure {
    /// Truncation, CRC mismatch or tail garbage — the torn-write signature.
    Torn,
    /// A genuine I/O failure; the journal's true contents are unknown.
    Io(std::io::Error),
}

fn classify(e: std::io::Error) -> RecordFailure {
    if e.kind() == std::io::ErrorKind::UnexpectedEof {
        RecordFailure::Torn
    } else {
        RecordFailure::Io(e)
    }
}

/// Reads one record; `Ok(None)` at clean EOF, `Err` on a torn/invalid tail
/// record or a hard read failure.
fn read_record<R: Read>(r: &mut R) -> Result<Option<(ManifestEvent, u64)>, RecordFailure> {
    let mut kind = [0u8; 1];
    match r.read_exact(&mut kind) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(RecordFailure::Io(e)),
    }
    let mut len_bytes = [0u8; 4];
    r.read_exact(&mut len_bytes).map_err(classify)?;
    let len = u32::from_le_bytes(len_bytes);
    if len > 1 << 20 {
        return Err(RecordFailure::Torn); // absurd length: tail garbage
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload).map_err(classify)?;
    let mut crc_bytes = [0u8; 4];
    r.read_exact(&mut crc_bytes).map_err(classify)?;
    let mut crc = Crc32::new();
    crc.update(&kind);
    crc.update(&len_bytes);
    crc.update(&payload);
    if crc.finalize() != u32::from_le_bytes(crc_bytes) {
        return Err(RecordFailure::Torn);
    }
    let event = match kind[0] {
        KIND_SEAL if payload.len() == 16 => ManifestEvent::Seal {
            id: u32::from_le_bytes(payload[0..4].try_into().unwrap()),
            chunk_count: u32::from_le_bytes(payload[4..8].try_into().unwrap()),
            data_bytes: u64::from_le_bytes(payload[8..16].try_into().unwrap()),
        },
        KIND_DELETE if payload.len() == 4 => ManifestEvent::Delete {
            id: u32::from_le_bytes(payload[0..4].try_into().unwrap()),
        },
        KIND_BACKUP if payload.len() == 28 => ManifestEvent::Backup {
            id: u64::from_le_bytes(payload[0..8].try_into().unwrap()),
            chunk_count: u32::from_le_bytes(payload[8..12].try_into().unwrap()),
            logical_bytes: u64::from_le_bytes(payload[12..20].try_into().unwrap()),
            timestamp: u64::from_le_bytes(payload[20..28].try_into().unwrap()),
        },
        KIND_BACKUP_DELETE if payload.len() == 20 => ManifestEvent::BackupDelete {
            id: u64::from_le_bytes(payload[0..8].try_into().unwrap()),
            chunk_count: u32::from_le_bytes(payload[8..12].try_into().unwrap()),
            logical_bytes: u64::from_le_bytes(payload[12..20].try_into().unwrap()),
        },
        KIND_GC_DROP if payload.len() == 28 => ManifestEvent::GcDrop {
            id: u32::from_le_bytes(payload[0..4].try_into().unwrap()),
            chunk_count: u32::from_le_bytes(payload[4..8].try_into().unwrap()),
            data_bytes: u64::from_le_bytes(payload[8..16].try_into().unwrap()),
            dead_chunks: u32::from_le_bytes(payload[16..20].try_into().unwrap()),
            dead_bytes: u64::from_le_bytes(payload[20..28].try_into().unwrap()),
        },
        KIND_REKEY_BEGIN if payload.len() == 8 => ManifestEvent::RekeyBegin {
            epoch: u64::from_le_bytes(payload[0..8].try_into().unwrap()),
        },
        KIND_REKEY_COMMIT if payload.len() == 8 => ManifestEvent::RekeyCommit {
            epoch: u64::from_le_bytes(payload[0..8].try_into().unwrap()),
        },
        _ => return Err(RecordFailure::Torn), // unknown kind or malformed payload
    };
    Ok(Some((event, 1 + 4 + u64::from(len) + 4)))
}

/// An open handle appending records to the manifest journal.
#[derive(Debug)]
pub struct ManifestWriter {
    file: File,
    policy: FsyncPolicy,
    io: IoPolicyHandle,
}

impl ManifestWriter {
    /// Creates a fresh journal (header only) under `dir`.
    ///
    /// # Errors
    ///
    /// Returns [`PersistError::Io`] on write failure.
    pub fn create(
        dir: &Path,
        policy: FsyncPolicy,
        io: &IoPolicyHandle,
    ) -> Result<Self, PersistError> {
        let mut file = File::create(manifest_path(dir))?;
        let mut header = [0u8; 6];
        header[..4].copy_from_slice(MANIFEST_MAGIC);
        header[4..].copy_from_slice(&MANIFEST_VERSION.to_le_bytes());
        write_checked(&mut file, &header, io, PersistSite::ManifestHeader)?;
        io.check_sync(PersistSite::ManifestSync)?;
        maybe_sync(&file, policy)?;
        io.check_sync(PersistSite::DirSync)?;
        maybe_sync_dir(dir, policy)?;
        Ok(ManifestWriter {
            file,
            policy,
            io: io.clone(),
        })
    }

    /// Reopens an existing journal for appending, first truncating it to
    /// `valid_len` (discarding any torn tail and any records the caller
    /// has rolled back).
    ///
    /// # Errors
    ///
    /// Returns [`PersistError::Io`] on failure.
    pub fn reopen(
        dir: &Path,
        valid_len: u64,
        policy: FsyncPolicy,
        io: &IoPolicyHandle,
    ) -> Result<Self, PersistError> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(manifest_path(dir))?;
        file.set_len(valid_len)?;
        maybe_sync(&file, policy)?;
        // Append mode would also work, but an explicit seek keeps the write
        // position unambiguous after the truncation.
        let mut file = file;
        use std::io::Seek;
        file.seek(std::io::SeekFrom::End(0))?;
        Ok(ManifestWriter {
            file,
            policy,
            io: io.clone(),
        })
    }

    fn append(&mut self, kind: u8, payload: &[u8]) -> Result<(), PersistError> {
        let len = payload.len() as u32;
        let mut crc = Crc32::new();
        crc.update(&[kind]);
        crc.update(&len.to_le_bytes());
        crc.update(payload);
        let mut record = Vec::with_capacity(9 + payload.len());
        record.push(kind);
        record.extend_from_slice(&len.to_le_bytes());
        record.extend_from_slice(payload);
        record.extend_from_slice(&crc.finalize().to_le_bytes());
        write_checked(
            &mut self.file,
            &record,
            &self.io,
            PersistSite::ManifestAppend,
        )?;
        self.io.check_sync(PersistSite::ManifestSync)?;
        maybe_sync(&self.file, self.policy)?;
        Ok(())
    }

    /// Appends (and per policy fsyncs) a seal record.
    ///
    /// # Errors
    ///
    /// Returns [`PersistError::Io`] on write failure.
    pub fn append_seal(
        &mut self,
        id: u32,
        chunk_count: u32,
        data_bytes: u64,
    ) -> Result<(), PersistError> {
        let mut payload = [0u8; 16];
        payload[0..4].copy_from_slice(&id.to_le_bytes());
        payload[4..8].copy_from_slice(&chunk_count.to_le_bytes());
        payload[8..16].copy_from_slice(&data_bytes.to_le_bytes());
        self.append(KIND_SEAL, &payload)
    }

    /// Appends (and per policy fsyncs) a delete record.
    ///
    /// Crate-private until garbage collection exists: engine recovery
    /// rejects delete records today, so letting external callers write one
    /// into a live journal would make the store unopenable.
    #[allow(dead_code)] // exercised by tests; GC drops use append_gc_drop
    pub(crate) fn append_delete(&mut self, id: u32) -> Result<(), PersistError> {
        self.append(KIND_DELETE, &id.to_le_bytes())
    }

    /// Appends (and per policy fsyncs) a backup commit record. The
    /// backup's recipe file must already be durable.
    ///
    /// # Errors
    ///
    /// Returns [`PersistError::Io`] on write failure.
    pub fn append_backup(
        &mut self,
        id: u64,
        chunk_count: u32,
        logical_bytes: u64,
        timestamp: u64,
    ) -> Result<(), PersistError> {
        let mut payload = [0u8; 28];
        payload[0..8].copy_from_slice(&id.to_le_bytes());
        payload[8..12].copy_from_slice(&chunk_count.to_le_bytes());
        payload[12..20].copy_from_slice(&logical_bytes.to_le_bytes());
        payload[20..28].copy_from_slice(&timestamp.to_le_bytes());
        self.append(KIND_BACKUP, &payload)
    }

    /// Appends (and per policy fsyncs) a backup delete record.
    ///
    /// # Errors
    ///
    /// Returns [`PersistError::Io`] on write failure.
    pub fn append_backup_delete(
        &mut self,
        id: u64,
        chunk_count: u32,
        logical_bytes: u64,
    ) -> Result<(), PersistError> {
        let mut payload = [0u8; 20];
        payload[0..8].copy_from_slice(&id.to_le_bytes());
        payload[8..12].copy_from_slice(&chunk_count.to_le_bytes());
        payload[12..20].copy_from_slice(&logical_bytes.to_le_bytes());
        self.append(KIND_BACKUP_DELETE, &payload)
    }

    /// Appends (and per policy fsyncs) a GC drop record. The victim's
    /// file is unlinked only after this record is durable.
    ///
    /// # Errors
    ///
    /// Returns [`PersistError::Io`] on write failure.
    pub fn append_gc_drop(
        &mut self,
        id: u32,
        chunk_count: u32,
        data_bytes: u64,
        dead_chunks: u32,
        dead_bytes: u64,
    ) -> Result<(), PersistError> {
        let mut payload = [0u8; 28];
        payload[0..4].copy_from_slice(&id.to_le_bytes());
        payload[4..8].copy_from_slice(&chunk_count.to_le_bytes());
        payload[8..16].copy_from_slice(&data_bytes.to_le_bytes());
        payload[16..20].copy_from_slice(&dead_chunks.to_le_bytes());
        payload[20..28].copy_from_slice(&dead_bytes.to_le_bytes());
        self.append(KIND_GC_DROP, &payload)
    }

    /// Appends (and per policy fsyncs) a rekey begin record.
    ///
    /// # Errors
    ///
    /// Returns [`PersistError::Io`] on write failure.
    pub fn append_rekey_begin(&mut self, epoch: u64) -> Result<(), PersistError> {
        self.append(KIND_REKEY_BEGIN, &epoch.to_le_bytes())
    }

    /// Appends (and per policy fsyncs) a rekey commit record.
    ///
    /// # Errors
    ///
    /// Returns [`PersistError::Io`] on write failure.
    pub fn append_rekey_commit(&mut self, epoch: u64) -> Result<(), PersistError> {
        self.append(KIND_REKEY_COMMIT, &epoch.to_le_bytes())
    }
}

// ---------------------------------------------------------------------------
// Snapshot
// ---------------------------------------------------------------------------

/// A point-in-time image of the engine's derived state, taken at a
/// consistent point (open container empty). Plain data — the engine
/// assembles and consumes it.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Snapshot {
    /// Number of manifest journal events the snapshot reflects (events
    /// `0..event_seq` are fully accounted in every field below; recovery
    /// replays `events[event_seq..]`).
    pub event_seq: u64,
    /// Config echo: metadata entry size.
    pub entry_bytes: u64,
    /// Config echo: fingerprint-index prefix shards.
    pub index_shards: u32,
    /// [`crate::stats::StoreStats`] as its canonical array form.
    pub stats: [u64; 13],
    /// Engine-level container-prefetch byte counter.
    pub loading_bytes: u64,
    /// Engine-level container-prefetch op counter.
    pub loading_ops: u64,
    /// Per-index-shard `(lookups, lookup_bytes, updates, update_bytes)`.
    pub shard_counters: Vec<[u64; 4]>,
    /// Fingerprint → container id entries, sorted by fingerprint.
    pub index_entries: Vec<(u64, u32)>,
    /// Cache hit counter.
    pub cache_hits: u64,
    /// Cache miss counter.
    pub cache_misses: u64,
    /// Cache eviction counter.
    pub cache_evictions: u64,
    /// Cached fingerprints in least→most recently used order.
    pub cache_lru: Vec<u64>,
}

fn snapshot_path(dir: &Path) -> PathBuf {
    dir.join(SNAPSHOT_FILE)
}

/// Removes the snapshot file (recovery calls this when discarding a
/// snapshot that describes lost state — leaving it on disk would let a
/// later recovery resurrect it after its container-id space is reused).
pub(crate) fn remove_snapshot(dir: &Path, policy: FsyncPolicy) -> Result<(), PersistError> {
    match std::fs::remove_file(snapshot_path(dir)) {
        Ok(()) => {
            maybe_sync_dir(dir, policy)?;
            Ok(())
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
        Err(e) => Err(e.into()),
    }
}

/// Writes `snapshot` atomically (temp file + rename) under `dir`.
///
/// # Errors
///
/// Returns [`PersistError::Io`] on write failure.
pub fn write_snapshot(
    dir: &Path,
    snapshot: &Snapshot,
    policy: FsyncPolicy,
    io: &IoPolicyHandle,
) -> Result<(), PersistError> {
    let tmp = dir.join(format!("{SNAPSHOT_FILE}.tmp"));
    let file = FaultFile::new(File::create(&tmp)?, io.clone(), PersistSite::SnapshotWrite);
    let mut w = CrcSink::new(BufWriter::new(file));
    w.write_all(SNAPSHOT_MAGIC)?;
    w.write_u16(SNAPSHOT_VERSION)?;
    w.write_u64(snapshot.event_seq)?;
    w.write_u64(snapshot.entry_bytes)?;
    w.write_u32(snapshot.index_shards)?;
    for &v in &snapshot.stats {
        w.write_u64(v)?;
    }
    w.write_u64(snapshot.loading_bytes)?;
    w.write_u64(snapshot.loading_ops)?;
    w.write_u32(snapshot.shard_counters.len() as u32)?;
    for counters in &snapshot.shard_counters {
        for &v in counters {
            w.write_u64(v)?;
        }
    }
    w.write_u64(snapshot.index_entries.len() as u64)?;
    for &(fp, cid) in &snapshot.index_entries {
        w.write_u64(fp)?;
        w.write_u32(cid)?;
    }
    w.write_u64(snapshot.cache_hits)?;
    w.write_u64(snapshot.cache_misses)?;
    w.write_u64(snapshot.cache_evictions)?;
    w.write_u64(snapshot.cache_lru.len() as u64)?;
    for &fp in &snapshot.cache_lru {
        w.write_u64(fp)?;
    }
    let mut buf = w.finish()?;
    buf.flush()?;
    buf.get_ref()
        .maybe_sync(policy, PersistSite::SnapshotSync)?;
    drop(buf);
    if io.before_write(PersistSite::SnapshotRename, 0) != FaultAction::Proceed {
        return Err(PersistError::Injected {
            site: PersistSite::SnapshotRename,
        });
    }
    std::fs::rename(&tmp, snapshot_path(dir))?;
    io.check_sync(PersistSite::DirSync)?;
    maybe_sync_dir(dir, policy)?;
    Ok(())
}

/// Reads the snapshot under `dir`; `Ok(None)` when none has been written
/// yet.
///
/// # Errors
///
/// Returns [`PersistError::Torn`] on truncation/CRC failure (should be
/// impossible under the atomic-rename discipline — its presence means
/// outside interference), plus the usual magic/version errors.
pub fn read_snapshot(dir: &Path) -> Result<Option<Snapshot>, PersistError> {
    let file = match File::open(snapshot_path(dir)) {
        Ok(f) => f,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e.into()),
    };
    let mut r = CrcSource::new(BufReader::new(file), SNAPSHOT_FILE);
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic, "magic")?;
    if &magic != SNAPSHOT_MAGIC {
        return Err(PersistError::BadMagic {
            file: SNAPSHOT_FILE.to_string(),
        });
    }
    let version = r.read_u16("version")?;
    if version != SNAPSHOT_VERSION {
        return Err(PersistError::BadVersion {
            file: SNAPSHOT_FILE.to_string(),
            version,
        });
    }
    let mut snapshot = Snapshot {
        event_seq: r.read_u64("event_seq")?,
        entry_bytes: r.read_u64("entry_bytes")?,
        index_shards: r.read_u32("index_shards")?,
        ..Snapshot::default()
    };
    for v in &mut snapshot.stats {
        *v = r.read_u64("stats")?;
    }
    snapshot.loading_bytes = r.read_u64("loading_bytes")?;
    snapshot.loading_ops = r.read_u64("loading_ops")?;
    let nshards = r.read_u32("shard counter count")? as usize;
    if nshards > 1 << 20 {
        return Err(PersistError::Corrupt(format!(
            "index.snap: absurd shard count {nshards}"
        )));
    }
    snapshot.shard_counters = (0..nshards)
        .map(|_| -> Result<[u64; 4], PersistError> {
            Ok([
                r.read_u64("shard lookups")?,
                r.read_u64("shard lookup bytes")?,
                r.read_u64("shard updates")?,
                r.read_u64("shard update bytes")?,
            ])
        })
        .collect::<Result<_, _>>()?;
    let entries = r.read_u64("index entry count")?;
    if entries > 1 << 40 {
        return Err(PersistError::Corrupt(format!(
            "index.snap: absurd entry count {entries}"
        )));
    }
    snapshot.index_entries = (0..entries)
        .map(|_| -> Result<(u64, u32), PersistError> {
            Ok((
                r.read_u64("entry fingerprint")?,
                r.read_u32("entry container")?,
            ))
        })
        .collect::<Result<_, _>>()?;
    snapshot.cache_hits = r.read_u64("cache hits")?;
    snapshot.cache_misses = r.read_u64("cache misses")?;
    snapshot.cache_evictions = r.read_u64("cache evictions")?;
    let cached = r.read_u64("cache entry count")?;
    if cached > 1 << 40 {
        return Err(PersistError::Corrupt(format!(
            "index.snap: absurd cache count {cached}"
        )));
    }
    snapshot.cache_lru = (0..cached)
        .map(|_| r.read_u64("cache fingerprint"))
        .collect::<Result<_, _>>()?;
    r.expect_crc()?;
    Ok(Some(snapshot))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("freqdedup-manifest-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn journal_round_trips_events() {
        let dir = tmp_dir("journal-rt");
        let mut w =
            ManifestWriter::create(&dir, FsyncPolicy::Never, &IoPolicyHandle::none()).unwrap();
        w.append_seal(0, 4, 64).unwrap();
        w.append_seal(1, 2, 32).unwrap();
        w.append_delete(0).unwrap();
        w.append_backup(7, 6, 96, 1234).unwrap();
        w.append_backup_delete(7, 6, 96).unwrap();
        w.append_gc_drop(0, 4, 64, 3, 48).unwrap();
        w.append_rekey_begin(1).unwrap();
        w.append_rekey_commit(1).unwrap();
        drop(w);
        let scan = scan_manifest(&dir).unwrap();
        assert_eq!(
            scan.events,
            vec![
                ManifestEvent::Seal {
                    id: 0,
                    chunk_count: 4,
                    data_bytes: 64
                },
                ManifestEvent::Seal {
                    id: 1,
                    chunk_count: 2,
                    data_bytes: 32
                },
                ManifestEvent::Delete { id: 0 },
                ManifestEvent::Backup {
                    id: 7,
                    chunk_count: 6,
                    logical_bytes: 96,
                    timestamp: 1234
                },
                ManifestEvent::BackupDelete {
                    id: 7,
                    chunk_count: 6,
                    logical_bytes: 96
                },
                ManifestEvent::GcDrop {
                    id: 0,
                    chunk_count: 4,
                    data_bytes: 64,
                    dead_chunks: 3,
                    dead_bytes: 48
                },
                ManifestEvent::RekeyBegin { epoch: 1 },
                ManifestEvent::RekeyCommit { epoch: 1 },
            ]
        );
        assert_eq!(scan.record_ends.len(), 8);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_record_is_dropped() {
        let dir = tmp_dir("journal-torn");
        let mut w =
            ManifestWriter::create(&dir, FsyncPolicy::Never, &IoPolicyHandle::none()).unwrap();
        w.append_seal(0, 4, 64).unwrap();
        w.append_seal(1, 2, 32).unwrap();
        drop(w);
        let path = dir.join(MANIFEST_FILE);
        let full = std::fs::read(&path).unwrap();
        // Truncate into the middle of the second record.
        let cut = full.len() - 7;
        std::fs::write(&path, &full[..cut]).unwrap();
        let scan = scan_manifest(&dir).unwrap();
        assert_eq!(scan.events.len(), 1, "only the first record survives");
        assert_eq!(
            scan.events[0],
            ManifestEvent::Seal {
                id: 0,
                chunk_count: 4,
                data_bytes: 64
            }
        );
        // Reopen truncates the garbage; a new append then scans cleanly.
        let mut w = ManifestWriter::reopen(
            &dir,
            scan.valid_len,
            FsyncPolicy::Never,
            &IoPolicyHandle::none(),
        )
        .unwrap();
        w.append_seal(1, 8, 128).unwrap();
        drop(w);
        let scan = scan_manifest(&dir).unwrap();
        assert_eq!(scan.events.len(), 2);
        assert_eq!(
            scan.events[1],
            ManifestEvent::Seal {
                id: 1,
                chunk_count: 8,
                data_bytes: 128
            }
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_tail_record_is_dropped() {
        let dir = tmp_dir("journal-bitflip");
        let mut w =
            ManifestWriter::create(&dir, FsyncPolicy::Never, &IoPolicyHandle::none()).unwrap();
        w.append_seal(0, 4, 64).unwrap();
        w.append_seal(1, 2, 32).unwrap();
        drop(w);
        let path = dir.join(MANIFEST_FILE);
        let mut bytes = std::fs::read(&path).unwrap();
        let n = bytes.len();
        bytes[n - 10] ^= 0xff; // inside the second record's payload
        std::fs::write(&path, &bytes).unwrap();
        let scan = scan_manifest(&dir).unwrap();
        assert_eq!(scan.events.len(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_journal_scans_empty() {
        let dir = tmp_dir("journal-empty");
        let w = ManifestWriter::create(&dir, FsyncPolicy::Never, &IoPolicyHandle::none()).unwrap();
        drop(w);
        let scan = scan_manifest(&dir).unwrap();
        assert!(scan.events.is_empty());
        assert_eq!(scan.valid_len, 6);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_journal_is_io_error() {
        let dir = tmp_dir("journal-missing");
        assert!(matches!(scan_manifest(&dir), Err(PersistError::Io(_))));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn snapshot_round_trips() {
        let dir = tmp_dir("snap-rt");
        let snapshot = Snapshot {
            event_seq: 3,
            entry_bytes: 32,
            index_shards: 2,
            stats: [1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13],
            loading_bytes: 10,
            loading_ops: 11,
            shard_counters: vec![[1, 32, 2, 64], [3, 96, 4, 128]],
            index_entries: vec![(5, 0), (9, 1), (u64::MAX, 2)],
            cache_hits: 12,
            cache_misses: 13,
            cache_evictions: 14,
            cache_lru: vec![9, 5],
        };
        write_snapshot(&dir, &snapshot, FsyncPolicy::Never, &IoPolicyHandle::none()).unwrap();
        assert_eq!(read_snapshot(&dir).unwrap(), Some(snapshot.clone()));
        // Overwrite atomically with a newer image.
        let newer = Snapshot {
            event_seq: 4,
            ..snapshot
        };
        write_snapshot(&dir, &newer, FsyncPolicy::Never, &IoPolicyHandle::none()).unwrap();
        assert_eq!(read_snapshot(&dir).unwrap().unwrap().event_seq, 4);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn absent_snapshot_is_none() {
        let dir = tmp_dir("snap-none");
        assert_eq!(read_snapshot(&dir).unwrap(), None);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_snapshot_is_detected() {
        let dir = tmp_dir("snap-corrupt");
        write_snapshot(
            &dir,
            &Snapshot::default(),
            FsyncPolicy::Never,
            &IoPolicyHandle::none(),
        )
        .unwrap();
        let path = dir.join(SNAPSHOT_FILE);
        let mut bytes = std::fs::read(&path).unwrap();
        let n = bytes.len();
        bytes[n - 9] ^= 0x80;
        std::fs::write(&path, &bytes).unwrap();
        assert!(read_snapshot(&dir).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
