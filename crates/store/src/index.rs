//! The fingerprint index: fingerprint → container mapping (§2.1, §7.4.1).
//!
//! The index is modelled as **on-disk**: it grows with the number of unique
//! chunks and cannot be assumed to fit in memory, which is why DDFS fronts it
//! with the Bloom filter and the fingerprint cache. Every lookup and update
//! is accounted in bytes of metadata traffic (32 bytes per fingerprint entry
//! by default), which is exactly the quantity Figures 13–14 report.

use std::collections::HashMap;

use freqdedup_trace::Fingerprint;

use crate::container::ContainerId;

/// The on-disk fingerprint index with byte-level access accounting.
#[derive(Debug, Default)]
pub struct FingerprintIndex {
    map: HashMap<Fingerprint, ContainerId>,
    entry_bytes: u64,
    lookup_bytes: u64,
    update_bytes: u64,
    lookups: u64,
    updates: u64,
}

impl FingerprintIndex {
    /// Creates an index with the paper's 32-byte entries.
    #[must_use]
    pub fn new() -> Self {
        Self::with_entry_bytes(32)
    }

    /// Creates an index with a custom per-entry metadata size.
    ///
    /// # Panics
    ///
    /// Panics if `entry_bytes` is zero.
    #[must_use]
    pub fn with_entry_bytes(entry_bytes: u64) -> Self {
        assert!(entry_bytes > 0, "entry size must be positive");
        FingerprintIndex {
            map: HashMap::new(),
            entry_bytes,
            lookup_bytes: 0,
            update_bytes: 0,
            lookups: 0,
            updates: 0,
        }
    }

    /// Looks up the container holding `fp`, accounting one on-disk index
    /// access (step S3).
    pub fn lookup(&mut self, fp: Fingerprint) -> Option<ContainerId> {
        self.lookups += 1;
        self.lookup_bytes += self.entry_bytes;
        self.map.get(&fp).copied()
    }

    /// Inserts (or overwrites) the mapping for `fp`, accounting one on-disk
    /// update access (steps S2/S3, at container flush time).
    pub fn insert(&mut self, fp: Fingerprint, container: ContainerId) {
        self.updates += 1;
        self.update_bytes += self.entry_bytes;
        self.map.insert(fp, container);
    }

    /// Membership test without accounting (test/debug use only — the engine
    /// never bypasses accounting).
    #[must_use]
    pub fn peek(&self, fp: Fingerprint) -> Option<ContainerId> {
        self.map.get(&fp).copied()
    }

    /// Number of indexed fingerprints.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the index is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Bytes of on-disk index reads so far ("index access").
    #[must_use]
    pub fn lookup_bytes(&self) -> u64 {
        self.lookup_bytes
    }

    /// Bytes of on-disk index writes so far ("update access").
    #[must_use]
    pub fn update_bytes(&self) -> u64 {
        self.update_bytes
    }

    /// Count of lookup operations.
    #[must_use]
    pub fn lookups(&self) -> u64 {
        self.lookups
    }

    /// Count of update operations.
    #[must_use]
    pub fn updates(&self) -> u64 {
        self.updates
    }

    /// The configured per-entry metadata size in bytes.
    #[must_use]
    pub fn entry_bytes(&self) -> u64 {
        self.entry_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_and_insert() {
        let mut idx = FingerprintIndex::new();
        assert_eq!(idx.lookup(Fingerprint(1)), None);
        idx.insert(Fingerprint(1), ContainerId(7));
        assert_eq!(idx.lookup(Fingerprint(1)), Some(ContainerId(7)));
        assert_eq!(idx.len(), 1);
    }

    #[test]
    fn accounting_in_bytes() {
        let mut idx = FingerprintIndex::new();
        let _ = idx.lookup(Fingerprint(1));
        let _ = idx.lookup(Fingerprint(2));
        idx.insert(Fingerprint(2), ContainerId(0));
        assert_eq!(idx.lookup_bytes(), 64);
        assert_eq!(idx.update_bytes(), 32);
        assert_eq!(idx.lookups(), 2);
        assert_eq!(idx.updates(), 1);
    }

    #[test]
    fn custom_entry_size() {
        let mut idx = FingerprintIndex::with_entry_bytes(48);
        let _ = idx.lookup(Fingerprint(1));
        assert_eq!(idx.lookup_bytes(), 48);
        assert_eq!(idx.entry_bytes(), 48);
    }

    #[test]
    fn peek_does_not_account() {
        let mut idx = FingerprintIndex::new();
        idx.insert(Fingerprint(1), ContainerId(0));
        let before = idx.lookup_bytes();
        assert_eq!(idx.peek(Fingerprint(1)), Some(ContainerId(0)));
        assert_eq!(idx.lookup_bytes(), before);
    }

    #[test]
    fn overwrite_updates_mapping() {
        let mut idx = FingerprintIndex::new();
        idx.insert(Fingerprint(1), ContainerId(0));
        idx.insert(Fingerprint(1), ContainerId(9));
        assert_eq!(idx.peek(Fingerprint(1)), Some(ContainerId(9)));
        assert_eq!(idx.len(), 1);
        assert_eq!(idx.updates(), 2);
    }

    #[test]
    #[should_panic(expected = "entry size")]
    fn zero_entry_bytes_rejected() {
        let _ = FingerprintIndex::with_entry_bytes(0);
    }
}
