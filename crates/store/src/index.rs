//! The fingerprint index: fingerprint → container mapping (§2.1, §7.4.1).
//!
//! The index is modelled as **on-disk**: it grows with the number of unique
//! chunks and cannot be assumed to fit in memory, which is why DDFS fronts it
//! with the Bloom filter and the fingerprint cache. Every lookup and update
//! is accounted in bytes of metadata traffic (32 bytes per fingerprint entry
//! by default), which is exactly the quantity Figures 13–14 report.
//!
//! The index is internally split into `N` **prefix shards**: a fingerprint's
//! leading bits select its shard (range partitioning — shard `s` owns the
//! fingerprints in `[s·2⁶⁴/N, (s+1)·2⁶⁴/N)`), so any fingerprint maps to
//! exactly one shard regardless of insertion order. Each shard keeps its own
//! map and access counters; the aggregate accessors sum over shards. With
//! the default `N = 1` the behaviour is the classic single-map index.
//!
//! Lookup counters are [`Cell`]s so that [`FingerprintIndex::lookup`] takes
//! `&self`: a read of an on-disk index mutates accounting, not the mapping,
//! and read paths (and shard-parallel readers, which each own their engine)
//! should not need `&mut` access.

use std::cell::Cell;
use std::collections::HashMap;

use freqdedup_trace::Fingerprint;

use crate::container::ContainerId;

/// One prefix shard: a private map plus its own access counters.
#[derive(Debug, Default)]
struct IndexShard {
    map: HashMap<Fingerprint, ContainerId>,
    lookup_bytes: Cell<u64>,
    lookups: Cell<u64>,
    update_bytes: u64,
    updates: u64,
}

/// Per-shard counter snapshot (for observability and shard-balance checks).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IndexShardStats {
    /// Fingerprints stored in the shard.
    pub entries: usize,
    /// Lookup operations served by the shard.
    pub lookups: u64,
    /// Bytes of on-disk reads charged to the shard.
    pub lookup_bytes: u64,
    /// Update operations applied to the shard.
    pub updates: u64,
    /// Bytes of on-disk writes charged to the shard.
    pub update_bytes: u64,
}

/// The on-disk fingerprint index with byte-level access accounting,
/// split into fingerprint-prefix shards.
#[derive(Debug)]
pub struct FingerprintIndex {
    shards: Vec<IndexShard>,
    entry_bytes: u64,
}

impl Default for FingerprintIndex {
    fn default() -> Self {
        Self::new()
    }
}

impl FingerprintIndex {
    /// Creates a single-shard index with the paper's 32-byte entries.
    #[must_use]
    pub fn new() -> Self {
        Self::with_entry_bytes(32)
    }

    /// Creates a single-shard index with a custom per-entry metadata size.
    ///
    /// # Panics
    ///
    /// Panics if `entry_bytes` is zero.
    #[must_use]
    pub fn with_entry_bytes(entry_bytes: u64) -> Self {
        Self::with_shards(entry_bytes, 1)
    }

    /// Creates an index split into `shards` fingerprint-prefix shards.
    ///
    /// # Panics
    ///
    /// Panics if `entry_bytes` or `shards` is zero.
    #[must_use]
    pub fn with_shards(entry_bytes: u64, shards: usize) -> Self {
        assert!(entry_bytes > 0, "entry size must be positive");
        assert!(shards > 0, "shard count must be positive");
        FingerprintIndex {
            shards: (0..shards).map(|_| IndexShard::default()).collect(),
            entry_bytes,
        }
    }

    /// The prefix shard owning `fp` ([`Fingerprint::prefix_shard`] over
    /// this index's shard count).
    #[must_use]
    pub fn shard_of(&self, fp: Fingerprint) -> usize {
        fp.prefix_shard(self.shards.len())
    }

    /// Looks up the container holding `fp`, accounting one on-disk index
    /// access (step S3) against the owning shard.
    pub fn lookup(&self, fp: Fingerprint) -> Option<ContainerId> {
        let shard = &self.shards[self.shard_of(fp)];
        shard.lookups.set(shard.lookups.get() + 1);
        shard
            .lookup_bytes
            .set(shard.lookup_bytes.get() + self.entry_bytes);
        shard.map.get(&fp).copied()
    }

    /// Inserts (or overwrites) the mapping for `fp`, accounting one on-disk
    /// update access (steps S2/S3, at container flush time).
    pub fn insert(&mut self, fp: Fingerprint, container: ContainerId) {
        let entry_bytes = self.entry_bytes;
        let shard_idx = self.shard_of(fp);
        let shard = &mut self.shards[shard_idx];
        shard.updates += 1;
        shard.update_bytes += entry_bytes;
        shard.map.insert(fp, container);
    }

    /// Removes the mapping for `fp`, accounting one on-disk update access
    /// against the owning shard (a delete of an on-disk entry is a write,
    /// like an insert). Returns the removed mapping, if any; a miss is
    /// still accounted — GC had to touch the shard to find out.
    pub fn remove(&mut self, fp: Fingerprint) -> Option<ContainerId> {
        let entry_bytes = self.entry_bytes;
        let shard_idx = self.shard_of(fp);
        let shard = &mut self.shards[shard_idx];
        shard.updates += 1;
        shard.update_bytes += entry_bytes;
        shard.map.remove(&fp)
    }

    /// Removes every entry mapping to `container`, with per-entry update
    /// accounting, returning the removed fingerprints (recovery's replay of
    /// a GC drop record: the entries still pointing at a dropped container
    /// at that point in the journal are exactly its dead chunks).
    pub(crate) fn remove_container_entries(&mut self, container: ContainerId) -> Vec<Fingerprint> {
        let entry_bytes = self.entry_bytes;
        let mut removed = Vec::new();
        for shard in &mut self.shards {
            let before = shard.map.len();
            shard.map.retain(|&fp, &mut cid| {
                if cid == container {
                    removed.push(fp);
                    false
                } else {
                    true
                }
            });
            let n = (before - shard.map.len()) as u64;
            shard.updates += n;
            shard.update_bytes += n * entry_bytes;
        }
        removed.sort_unstable();
        removed
    }

    /// Charges `n` update accesses to shard 0 without touching the mapping.
    /// Recovery uses this when replaying the seal of a container that a
    /// later journal record drops: the file is gone, so the per-fingerprint
    /// inserts cannot be reproduced, but their accounted cost can.
    pub(crate) fn account_updates(&mut self, n: u64) {
        let entry_bytes = self.entry_bytes;
        let shard = &mut self.shards[0];
        shard.updates += n;
        shard.update_bytes += n * entry_bytes;
    }

    /// Re-inserts a recovered mapping **without** accounting: recovery
    /// rebuilds the in-memory map from the snapshot, whose counters already
    /// include the original accounted insertions.
    pub(crate) fn restore_entry(&mut self, fp: Fingerprint, container: ContainerId) {
        let shard_idx = self.shard_of(fp);
        self.shards[shard_idx].map.insert(fp, container);
    }

    /// Overwrites the per-shard access counters with recovered values
    /// (`[lookups, lookup_bytes, updates, update_bytes]` per shard).
    ///
    /// # Panics
    ///
    /// Panics when `counters` does not cover every shard exactly once —
    /// recovery validates the shard count before calling.
    pub(crate) fn set_shard_counters(&mut self, counters: &[[u64; 4]]) {
        assert_eq!(counters.len(), self.shards.len(), "shard count mismatch");
        for (shard, c) in self.shards.iter_mut().zip(counters) {
            shard.lookups.set(c[0]);
            shard.lookup_bytes.set(c[1]);
            shard.updates = c[2];
            shard.update_bytes = c[3];
        }
    }

    /// All `(fingerprint, container)` entries sorted by fingerprint.
    ///
    /// Prefix shards own contiguous fingerprint ranges, so sorting each
    /// shard and concatenating in shard order yields the global order —
    /// this is the snapshot serialization order, and a deterministic basis
    /// for index-content comparisons.
    #[must_use]
    pub fn sorted_entries(&self) -> Vec<(Fingerprint, ContainerId)> {
        let mut out = Vec::with_capacity(self.len());
        for shard in &self.shards {
            let start = out.len();
            out.extend(shard.map.iter().map(|(&fp, &cid)| (fp, cid)));
            out[start..].sort_unstable_by_key(|&(fp, _)| fp);
        }
        out
    }

    /// Membership test without accounting (test/debug use only — the engine
    /// never bypasses accounting).
    #[must_use]
    pub fn peek(&self, fp: Fingerprint) -> Option<ContainerId> {
        self.shards[self.shard_of(fp)].map.get(&fp).copied()
    }

    /// Number of indexed fingerprints (all shards).
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.map.len()).sum()
    }

    /// Whether the index is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.map.is_empty())
    }

    /// Number of prefix shards.
    #[must_use]
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Per-shard counter snapshots, in shard order.
    #[must_use]
    pub fn shard_stats(&self) -> Vec<IndexShardStats> {
        self.shards
            .iter()
            .map(|s| IndexShardStats {
                entries: s.map.len(),
                lookups: s.lookups.get(),
                lookup_bytes: s.lookup_bytes.get(),
                updates: s.updates,
                update_bytes: s.update_bytes,
            })
            .collect()
    }

    /// Bytes of on-disk index reads so far ("index access", all shards).
    #[must_use]
    pub fn lookup_bytes(&self) -> u64 {
        self.shards.iter().map(|s| s.lookup_bytes.get()).sum()
    }

    /// Bytes of on-disk index writes so far ("update access", all shards).
    #[must_use]
    pub fn update_bytes(&self) -> u64 {
        self.shards.iter().map(|s| s.update_bytes).sum()
    }

    /// Count of lookup operations (all shards).
    #[must_use]
    pub fn lookups(&self) -> u64 {
        self.shards.iter().map(|s| s.lookups.get()).sum()
    }

    /// Count of update operations (all shards).
    #[must_use]
    pub fn updates(&self) -> u64 {
        self.shards.iter().map(|s| s.updates).sum()
    }

    /// The configured per-entry metadata size in bytes.
    #[must_use]
    pub fn entry_bytes(&self) -> u64 {
        self.entry_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_and_insert() {
        let mut idx = FingerprintIndex::new();
        assert_eq!(idx.lookup(Fingerprint(1)), None);
        idx.insert(Fingerprint(1), ContainerId(7));
        assert_eq!(idx.lookup(Fingerprint(1)), Some(ContainerId(7)));
        assert_eq!(idx.len(), 1);
    }

    #[test]
    fn accounting_in_bytes() {
        let mut idx = FingerprintIndex::new();
        let _ = idx.lookup(Fingerprint(1));
        let _ = idx.lookup(Fingerprint(2));
        idx.insert(Fingerprint(2), ContainerId(0));
        assert_eq!(idx.lookup_bytes(), 64);
        assert_eq!(idx.update_bytes(), 32);
        assert_eq!(idx.lookups(), 2);
        assert_eq!(idx.updates(), 1);
    }

    #[test]
    fn lookup_takes_shared_reference() {
        // The accounting counters are interior-mutable: a shared reference
        // is enough to serve (and account) reads.
        let mut idx = FingerprintIndex::new();
        idx.insert(Fingerprint(3), ContainerId(1));
        let shared: &FingerprintIndex = &idx;
        assert_eq!(shared.lookup(Fingerprint(3)), Some(ContainerId(1)));
        assert_eq!(shared.lookups(), 1);
    }

    #[test]
    fn custom_entry_size() {
        let idx = FingerprintIndex::with_entry_bytes(48);
        let _ = idx.lookup(Fingerprint(1));
        assert_eq!(idx.lookup_bytes(), 48);
        assert_eq!(idx.entry_bytes(), 48);
    }

    #[test]
    fn peek_does_not_account() {
        let mut idx = FingerprintIndex::new();
        idx.insert(Fingerprint(1), ContainerId(0));
        let before = idx.lookup_bytes();
        assert_eq!(idx.peek(Fingerprint(1)), Some(ContainerId(0)));
        assert_eq!(idx.lookup_bytes(), before);
    }

    #[test]
    fn overwrite_updates_mapping() {
        let mut idx = FingerprintIndex::new();
        idx.insert(Fingerprint(1), ContainerId(0));
        idx.insert(Fingerprint(1), ContainerId(9));
        assert_eq!(idx.peek(Fingerprint(1)), Some(ContainerId(9)));
        assert_eq!(idx.len(), 1);
        assert_eq!(idx.updates(), 2);
    }

    #[test]
    fn prefix_sharding_is_stable_and_total() {
        let idx = FingerprintIndex::with_shards(32, 4);
        assert_eq!(idx.num_shards(), 4);
        // Leading bits select the shard: quarter boundaries of u64 space.
        assert_eq!(idx.shard_of(Fingerprint(0)), 0);
        assert_eq!(idx.shard_of(Fingerprint(1 << 62)), 1);
        assert_eq!(idx.shard_of(Fingerprint(1 << 63)), 2);
        assert_eq!(idx.shard_of(Fingerprint(u64::MAX)), 3);
        for v in [0u64, 1, 42, 1 << 40, u64::MAX] {
            let s = idx.shard_of(Fingerprint(v));
            assert!(s < 4);
            assert_eq!(s, idx.shard_of(Fingerprint(v)), "stable");
        }
    }

    #[test]
    fn sharded_counters_aggregate() {
        let mut idx = FingerprintIndex::with_shards(32, 4);
        // One fingerprint per quarter of the space.
        let fps = [0u64, 1 << 62, 1 << 63, (1 << 63) | (1 << 62)];
        for (i, &v) in fps.iter().enumerate() {
            idx.insert(Fingerprint(v), ContainerId(i as u32));
            let _ = idx.lookup(Fingerprint(v));
        }
        assert_eq!(idx.len(), 4);
        assert_eq!(idx.lookups(), 4);
        assert_eq!(idx.updates(), 4);
        assert_eq!(idx.lookup_bytes(), 4 * 32);
        let per_shard = idx.shard_stats();
        assert_eq!(per_shard.len(), 4);
        for s in per_shard {
            assert_eq!(s.entries, 1);
            assert_eq!(s.lookups, 1);
            assert_eq!(s.updates, 1);
            assert_eq!(s.lookup_bytes, 32);
            assert_eq!(s.update_bytes, 32);
        }
    }

    #[test]
    fn sharded_index_behaves_like_single_shard() {
        let mut one = FingerprintIndex::with_shards(32, 1);
        let mut many = FingerprintIndex::with_shards(32, 7);
        for v in 0..1000u64 {
            let fp = Fingerprint(v.wrapping_mul(0x9e37_79b9_7f4a_7c15));
            one.insert(fp, ContainerId((v % 13) as u32));
            many.insert(fp, ContainerId((v % 13) as u32));
            assert_eq!(one.lookup(fp), many.lookup(fp));
        }
        assert_eq!(one.len(), many.len());
        assert_eq!(one.lookup_bytes(), many.lookup_bytes());
        assert_eq!(one.update_bytes(), many.update_bytes());
    }

    #[test]
    fn sorted_entries_global_order() {
        let mut idx = FingerprintIndex::with_shards(32, 4);
        let fps = [u64::MAX, 3, 1 << 63, 1 << 62, 0, (1 << 63) | 7];
        for (i, &v) in fps.iter().enumerate() {
            idx.insert(Fingerprint(v), ContainerId(i as u32));
        }
        let entries = idx.sorted_entries();
        let order: Vec<u64> = entries.iter().map(|&(fp, _)| fp.value()).collect();
        let mut want = fps.to_vec();
        want.sort_unstable();
        assert_eq!(order, want);
    }

    #[test]
    fn restore_entry_bypasses_accounting() {
        let mut idx = FingerprintIndex::with_shards(32, 2);
        idx.restore_entry(Fingerprint(1), ContainerId(3));
        assert_eq!(idx.peek(Fingerprint(1)), Some(ContainerId(3)));
        assert_eq!(idx.updates(), 0);
        assert_eq!(idx.update_bytes(), 0);
        idx.set_shard_counters(&[[1, 32, 2, 64], [0, 0, 0, 0]]);
        assert_eq!(idx.lookups(), 1);
        assert_eq!(idx.update_bytes(), 64);
    }

    #[test]
    fn remove_accounts_like_an_update() {
        let mut idx = FingerprintIndex::new();
        idx.insert(Fingerprint(1), ContainerId(0));
        assert_eq!(idx.remove(Fingerprint(1)), Some(ContainerId(0)));
        assert_eq!(idx.peek(Fingerprint(1)), None);
        assert_eq!(idx.remove(Fingerprint(1)), None, "miss still accounted");
        assert_eq!(idx.updates(), 3);
        assert_eq!(idx.update_bytes(), 96);
    }

    #[test]
    fn remove_container_entries_sweeps_all_shards() {
        let mut idx = FingerprintIndex::with_shards(32, 4);
        let fps = [0u64, 1 << 62, 1 << 63, (1 << 63) | (1 << 62)];
        for &v in &fps {
            idx.insert(Fingerprint(v), ContainerId(7));
        }
        idx.insert(Fingerprint(42), ContainerId(3));
        let removed = idx.remove_container_entries(ContainerId(7));
        assert_eq!(removed.len(), 4);
        assert!(removed.windows(2).all(|w| w[0] < w[1]), "sorted");
        assert_eq!(idx.len(), 1);
        assert_eq!(idx.peek(Fingerprint(42)), Some(ContainerId(3)));
        assert_eq!(idx.updates(), 5 + 4);
        idx.account_updates(2);
        assert_eq!(idx.updates(), 11);
        assert_eq!(idx.update_bytes(), 11 * 32);
    }

    #[test]
    #[should_panic(expected = "entry size")]
    fn zero_entry_bytes_rejected() {
        let _ = FingerprintIndex::with_entry_bytes(0);
    }

    #[test]
    #[should_panic(expected = "shard count")]
    fn zero_shards_rejected() {
        let _ = FingerprintIndex::with_shards(32, 0);
    }
}
