//! Shard-parallel deduplication: N independent [`DedupEngine`]s partitioned
//! by fingerprint prefix.
//!
//! Cross-user dedup at "heavy traffic" scale cannot serialize a million-chunk
//! backup through one engine. [`ShardedDedupEngine`] range-partitions the
//! fingerprint space into `N` prefix shards (the same partition
//! [`crate::index::FingerprintIndex`] uses internally) and gives each shard a
//! complete engine — Bloom filter, cache, containers, index. Because a
//! fingerprint always routes to the same shard, every chunk still traverses
//! the exact S1→S4 workflow of §7.4.1 against the one engine that owns it:
//! [`ChunkOutcome`] semantics are unchanged, and duplicate detection is exact
//! (two identical chunks can never land in different shards).
//!
//! **Determinism.** The shard partition is a pure function of the
//! fingerprint, and [`ShardedDedupEngine::ingest_backup`] preserves the
//! stream order *within* each shard, so per-shard engine state — and
//! therefore the merged [`StoreStats`] / [`MetadataAccess`] totals — is
//! identical whether the shards are drained sequentially or by parallel
//! workers, at any thread count. What sharding itself changes versus a
//! single engine is only the container packing (each shard seals its own
//! containers) and hence the S1/S4 *split* of duplicate hits; the logical /
//! unique / duplicate totals are exactly those of the single-engine run.

use freqdedup_trace::par::{self, ParConfig};
use freqdedup_trace::{Backup, ChunkRecord, Fingerprint};

use crate::engine::{ChunkOutcome, DedupConfig, DedupEngine};
use crate::lifecycle::{DeleteReport, GcReport, LifecycleError, RekeyReport, RetentionPolicy};
use crate::persist::{self, MetaKind, PersistConfig, PersistError, StoreMeta};
use crate::stats::{MetadataAccess, StoreStats};

/// N fingerprint-prefix shards, each a full [`DedupEngine`].
#[derive(Debug)]
pub struct ShardedDedupEngine {
    engines: Vec<DedupEngine>,
}

impl ShardedDedupEngine {
    /// Builds `shards` engines from one aggregate configuration
    /// ([`Self::open`] with the error stringified — kept for source
    /// compatibility).
    ///
    /// `config.bloom_expected` and `config.cache_entries` are interpreted
    /// as the *total* memory budgets and divided across shards (rounded
    /// up), so the aggregate Bloom and fingerprint-cache footprints match
    /// a single-engine deployment with the same configuration — sharded
    /// vs. single-engine comparisons are resource-equal.
    ///
    /// # Errors
    ///
    /// Returns a message when `shards` is zero or the per-shard
    /// configuration fails [`DedupConfig::validate`].
    pub fn new(config: DedupConfig, shards: usize) -> Result<Self, String> {
        Self::open(config, shards).map_err(|e| e.to_string())
    }

    /// Opens a sharded engine. With [`DedupConfig::persist`] set, the
    /// directory holds a *sharded* `store.meta` plus one engine directory
    /// per prefix shard (`shard-NNN/`); each shard engine persists — and
    /// recovers — independently under its subdirectory, so parallel ingest
    /// never contends on a shared file.
    ///
    /// # Errors
    ///
    /// As [`DedupEngine::open`], plus [`PersistError::ConfigMismatch`]
    /// when the directory was created with a different shard count.
    pub fn open(config: DedupConfig, shards: usize) -> Result<Self, PersistError> {
        if shards == 0 {
            return Err(PersistError::InvalidConfig(
                "shard count must be positive".into(),
            ));
        }
        let per_shard = DedupConfig {
            bloom_expected: config.bloom_expected.div_ceil(shards as u64),
            cache_entries: config.cache_entries.div_ceil(shards),
            persist: None,
            ..config.clone()
        };
        if let Some(pcfg) = &config.persist {
            per_shard.validate().map_err(PersistError::InvalidConfig)?;
            std::fs::create_dir_all(&pcfg.dir)?;
            let meta = StoreMeta {
                kind: MetaKind::Sharded,
                shards: shards as u32,
                entry_bytes: config.entry_bytes,
                index_shards: config.index_shards as u32,
                container_bytes: config.container_bytes,
            };
            persist::ensure_meta(&pcfg.dir, &meta, pcfg.fsync, &pcfg.io)?;
            let engines = (0..shards)
                .map(|i| {
                    let shard_dir = pcfg.dir.join(format!("shard-{i:03}"));
                    DedupEngine::open(DedupConfig {
                        persist: Some(PersistConfig {
                            dir: shard_dir,
                            ..pcfg.clone()
                        }),
                        ..per_shard.clone()
                    })
                })
                .collect::<Result<Vec<_>, _>>()?;
            Ok(ShardedDedupEngine { engines })
        } else {
            let engines = (0..shards)
                .map(|_| DedupEngine::open(per_shard.clone()))
                .collect::<Result<Vec<_>, _>>()?;
            Ok(ShardedDedupEngine { engines })
        }
    }

    /// Seals every shard and writes every shard's snapshot now (a durable
    /// checkpoint across the whole sharded store).
    ///
    /// # Errors
    ///
    /// Returns the first shard's [`PersistError`] on write failure.
    pub fn checkpoint(&mut self) -> Result<(), PersistError> {
        for engine in &mut self.engines {
            engine.checkpoint()?;
        }
        Ok(())
    }

    /// Flushes, snapshots and consumes the sharded engine; a later
    /// [`Self::open`] on the same directory resumes bit-identically.
    ///
    /// # Errors
    ///
    /// Returns the first shard's [`PersistError`] on write failure.
    pub fn close(self) -> Result<(), PersistError> {
        for engine in self.engines {
            engine.close()?;
        }
        Ok(())
    }

    /// The prefix shard owning `fp` ([`Fingerprint::prefix_shard`] over
    /// this engine's shard count — the same partition
    /// [`crate::index::FingerprintIndex`] uses).
    #[must_use]
    pub fn shard_of(&self, fp: Fingerprint) -> usize {
        fp.prefix_shard(self.engines.len())
    }

    /// Number of shards.
    #[must_use]
    pub fn num_shards(&self) -> usize {
        self.engines.len()
    }

    /// Processes one chunk on its owning shard (trace-driven mode).
    pub fn process(&mut self, record: ChunkRecord) -> ChunkOutcome {
        let shard = self.shard_of(record.fp);
        self.engines[shard].process(record)
    }

    /// Processes one chunk storing its payload bytes on its owning shard
    /// (content mode; the serving path of the network service).
    ///
    /// # Panics
    ///
    /// As [`DedupEngine::process_with_payload`] (mixed-mode ingestion or
    /// a persistent write failure).
    pub fn process_with_payload(&mut self, record: ChunkRecord, payload: &[u8]) -> ChunkOutcome {
        let shard = self.shard_of(record.fp);
        self.engines[shard].process_with_payload(record, payload)
    }

    /// Whether `fp` is stored at all — in its owning shard's sealed index
    /// or still in that shard's open container.
    #[must_use]
    pub fn contains(&self, fp: Fingerprint) -> bool {
        let engine = &self.engines[self.shard_of(fp)];
        engine.index().peek(fp).is_some() || engine.containers().open_contains(fp)
    }

    /// Ingests a whole backup: the stream is partitioned by shard
    /// (preserving stream order within each shard), then the shards are
    /// drained by up to `par.resolve()` scoped workers, each owning its
    /// engine exclusively. Merged counters are independent of the thread
    /// count.
    pub fn ingest_backup(&mut self, backup: &Backup, par: ParConfig) {
        let mut streams: Vec<Vec<ChunkRecord>> = vec![Vec::new(); self.engines.len()];
        for &record in backup {
            streams[self.shard_of(record.fp)].push(record);
        }
        let mut work: Vec<(&mut DedupEngine, Vec<ChunkRecord>)> =
            self.engines.iter_mut().zip(streams).collect();
        par::par_for_each_mut(par.resolve(), &mut work, |_, (engine, stream)| {
            for &record in stream.iter() {
                engine.process(record);
            }
        });
    }

    /// Seals every shard's open container (call once after the final
    /// backup; the engine remains usable afterwards).
    pub fn finish(&mut self) {
        for engine in &mut self.engines {
            engine.finish();
        }
    }

    /// Commits a backup across all shards: the chunk stream is partitioned
    /// by owning shard and every shard commits its slice (possibly empty)
    /// under the same `id` / `timestamp`, so lifecycle state stays
    /// consistent store-wide.
    ///
    /// # Errors
    ///
    /// [`LifecycleError::DuplicateBackup`] when `id` is already committed.
    pub fn commit_backup(
        &mut self,
        id: u64,
        timestamp: u64,
        chunks: &[ChunkRecord],
    ) -> Result<(), LifecycleError> {
        if self.engines[0].backup_recipe(id).is_some() {
            return Err(LifecycleError::DuplicateBackup { id });
        }
        let mut streams: Vec<Vec<ChunkRecord>> = vec![Vec::new(); self.engines.len()];
        for &record in chunks {
            streams[self.shard_of(record.fp)].push(record);
        }
        for (engine, stream) in self.engines.iter_mut().zip(&streams) {
            engine.commit_backup(id, timestamp, stream)?;
        }
        Ok(())
    }

    /// Deletes a committed backup on every shard, merging the reports.
    ///
    /// # Errors
    ///
    /// [`LifecycleError::UnknownBackup`] when `id` is not committed.
    pub fn delete_backup(&mut self, id: u64) -> Result<DeleteReport, LifecycleError> {
        if self.engines[0].backup_recipe(id).is_none() {
            return Err(LifecycleError::UnknownBackup { id });
        }
        let mut merged = DeleteReport {
            chunks_released: 0,
            logical_bytes: 0,
        };
        for engine in &mut self.engines {
            let r = engine.delete_backup(id)?;
            merged.chunks_released += r.chunks_released;
            merged.logical_bytes += r.logical_bytes;
        }
        Ok(merged)
    }

    /// Committed, undeleted backups as `(id, timestamp)`, sorted by id
    /// (every shard holds the same set; shard 0 answers).
    #[must_use]
    pub fn committed_backups(&self) -> Vec<(u64, u64)> {
        self.engines[0].committed_backups()
    }

    /// Backup ids a retention policy would delete, given the caller's
    /// logical clock `now`.
    #[must_use]
    pub fn retention_victims(&self, policy: RetentionPolicy, now: u64) -> Vec<u64> {
        policy.victims(&self.committed_backups(), now)
    }

    /// Garbage-collects every shard (see [`DedupEngine::gc`]), merging the
    /// reports.
    pub fn gc(&mut self, live_threshold_permille: u32) -> GcReport {
        let mut merged = GcReport::default();
        for engine in &mut self.engines {
            merged += engine.gc(live_threshold_permille);
        }
        merged
    }

    /// Rekeys every shard to a common target epoch (the furthest any shard
    /// has begun — shards interrupted mid-rekey resume, shards already
    /// committed no-op), merging the reports. See [`DedupEngine::rekey_to`].
    pub fn rekey(&mut self, new_secret: &[u8]) -> RekeyReport {
        let committed = self
            .engines
            .iter()
            .map(DedupEngine::epoch)
            .max()
            .expect("at least one shard");
        let pending = self
            .engines
            .iter()
            .filter_map(DedupEngine::pending_rekey)
            .max();
        let lagging = self.engines.iter().any(|e| e.epoch() < committed);
        let target = match pending {
            Some(p) if p > committed => p,
            _ if lagging => committed,
            _ => committed + 1,
        };
        let mut rewritten = 0u64;
        for engine in &mut self.engines {
            rewritten += engine.rekey_to(target, new_secret).containers_rewritten;
        }
        RekeyReport {
            epoch: target,
            containers_rewritten: rewritten,
        }
    }

    /// The committed key epoch: the furthest any shard has committed (a
    /// crash mid-fanout can leave shards behind; [`Self::rekey`] converges
    /// them).
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.engines
            .iter()
            .map(DedupEngine::epoch)
            .max()
            .unwrap_or(0)
    }

    /// Deduplication counters merged across shards.
    #[must_use]
    pub fn stats(&self) -> StoreStats {
        self.engines.iter().map(DedupEngine::stats).sum()
    }

    /// Metadata access totals merged across shards.
    #[must_use]
    pub fn metadata_access(&self) -> MetadataAccess {
        self.engines.iter().map(DedupEngine::metadata_access).sum()
    }

    /// Total container prefetch operations (S4) across shards.
    #[must_use]
    pub fn loading_ops(&self) -> u64 {
        self.engines.iter().map(DedupEngine::loading_ops).sum()
    }

    /// Reads back a stored chunk's payload from its owning shard
    /// (content mode only; borrowed, like [`DedupEngine::read_chunk`]).
    #[must_use]
    pub fn read_chunk(&self, fp: Fingerprint) -> Option<&[u8]> {
        self.engines[self.shard_of(fp)].read_chunk(fp)
    }

    /// The per-shard engines, in shard order (inspection).
    #[must_use]
    pub fn shards(&self) -> &[DedupEngine] {
        &self.engines
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(fp: u64, size: u32) -> ChunkRecord {
        ChunkRecord::new(fp, size)
    }

    fn config() -> DedupConfig {
        DedupConfig {
            container_bytes: 256,
            cache_entries: 64,
            entry_bytes: 32,
            bloom_expected: 10_000,
            bloom_fp_rate: 0.01,
            index_shards: 1,
            persist: None,
        }
    }

    /// A spread-out fingerprint stream with duplicates (multiplicative
    /// hashing scatters values across the whole u64 space, so every shard
    /// gets traffic).
    fn stream(n: u64) -> Vec<ChunkRecord> {
        (0..n)
            .map(|i| rec((i % (n / 3).max(1)).wrapping_mul(0x9e37_79b9_7f4a_7c15), 16))
            .collect()
    }

    #[test]
    fn routing_is_stable_and_exhaustive() {
        let e = ShardedDedupEngine::new(config(), 4).unwrap();
        assert_eq!(e.num_shards(), 4);
        for v in [0u64, 1, 1 << 62, 1 << 63, u64::MAX] {
            let s = e.shard_of(Fingerprint(v));
            assert!(s < 4);
            assert_eq!(s, e.shard_of(Fingerprint(v)));
        }
    }

    #[test]
    fn totals_match_single_engine() {
        // logical / unique / duplicate totals are partition-invariant.
        let records = stream(900);
        let backup = Backup::from_chunks("b", records.clone());

        let mut single = DedupEngine::new(config()).unwrap();
        for &r in &records {
            single.process(r);
        }
        single.finish();

        let mut sharded = ShardedDedupEngine::new(config(), 4).unwrap();
        sharded.ingest_backup(&backup, ParConfig::sequential());
        sharded.finish();

        let s1 = single.stats();
        let s4 = sharded.stats();
        assert_eq!(s1.logical_chunks, s4.logical_chunks);
        assert_eq!(s1.logical_bytes, s4.logical_bytes);
        assert_eq!(s1.unique_chunks, s4.unique_chunks);
        assert_eq!(s1.unique_bytes, s4.unique_bytes);
        assert_eq!(s1.duplicates(), s4.duplicates());
    }

    #[test]
    fn thread_count_does_not_change_state() {
        let backup = Backup::from_chunks("b", stream(1200));
        let mut reference: Option<(StoreStats, MetadataAccess, u64)> = None;
        for threads in [1usize, 2, 4, 8] {
            let mut e = ShardedDedupEngine::new(config(), 4).unwrap();
            e.ingest_backup(&backup, ParConfig::with_threads(threads));
            e.finish();
            let got = (e.stats(), e.metadata_access(), e.loading_ops());
            match &reference {
                None => reference = Some(got),
                Some(want) => assert_eq!(&got, want, "threads {threads}"),
            }
        }
    }

    #[test]
    fn parallel_ingest_equals_sequential_routing() {
        let records = stream(600);
        let backup = Backup::from_chunks("b", records.clone());

        let mut routed = ShardedDedupEngine::new(config(), 3).unwrap();
        for &r in &records {
            routed.process(r);
        }
        routed.finish();

        let mut parallel = ShardedDedupEngine::new(config(), 3).unwrap();
        parallel.ingest_backup(&backup, ParConfig::with_threads(3));
        parallel.finish();

        assert_eq!(routed.stats(), parallel.stats());
        assert_eq!(routed.metadata_access(), parallel.metadata_access());
    }

    #[test]
    fn outcome_semantics_preserved_per_shard() {
        let mut e = ShardedDedupEngine::new(config(), 2).unwrap();
        assert_eq!(e.process(rec(7, 16)), ChunkOutcome::Unique);
        assert_eq!(e.process(rec(7, 16)), ChunkOutcome::DuplicateBuffer);
        e.finish();
        assert_eq!(e.process(rec(7, 16)), ChunkOutcome::DuplicateIndex);
        assert_eq!(e.process(rec(7, 16)), ChunkOutcome::DuplicateCache);
    }

    #[test]
    fn payload_reads_route_to_owning_shard() {
        let mut e = ShardedDedupEngine::new(config(), 4).unwrap();
        let a = Fingerprint(1);
        let b = Fingerprint(u64::MAX / 2);
        let shard_a = e.shard_of(a);
        e.engines[shard_a].process_with_payload(rec(a.value(), 5), b"hello");
        let shard_b = e.shard_of(b);
        e.engines[shard_b].process_with_payload(rec(b.value(), 5), b"world");
        assert_eq!(e.read_chunk(a), Some(&b"hello"[..]));
        assert_eq!(e.read_chunk(b), Some(&b"world"[..]));
        assert_eq!(e.read_chunk(Fingerprint(999_999)), None);
    }

    #[test]
    fn payload_process_and_contains_route_to_owning_shard() {
        let mut e = ShardedDedupEngine::new(config(), 4).unwrap();
        let a = Fingerprint(3);
        let b = Fingerprint(u64::MAX / 3);
        assert_eq!(
            e.process_with_payload(rec(a.value(), 5), b"alpha"),
            ChunkOutcome::Unique
        );
        assert_eq!(
            e.process_with_payload(rec(b.value(), 4), b"beta"),
            ChunkOutcome::Unique
        );
        assert!(e
            .process_with_payload(rec(a.value(), 5), b"alpha")
            .is_duplicate());
        assert!(e.contains(a) && e.contains(b));
        assert!(!e.contains(Fingerprint(77)));
        e.finish();
        assert!(e.contains(a), "contains must survive sealing");
        assert_eq!(e.read_chunk(b), Some(&b"beta"[..]));
    }

    #[test]
    fn zero_shards_rejected() {
        assert!(ShardedDedupEngine::new(config(), 0).is_err());
    }

    #[test]
    fn memory_budgets_divided_across_shards() {
        let e = ShardedDedupEngine::new(config(), 4).unwrap();
        for shard in e.shards() {
            assert_eq!(shard.config().bloom_expected, 2500);
            assert_eq!(shard.config().cache_entries, 16);
        }
    }
}
