//! Bloom filter over chunk fingerprints.
//!
//! The paper configures a false-positive rate of 0.01, for which the optimal
//! construction uses 7 hash functions (§7.4.2: "we set the Bloom filter with
//! a false positive rate of 0.01 \[67\] ... we use 7 hash functions").
//! Membership bits are derived from the fingerprint by double hashing.

use freqdedup_trace::Fingerprint;

/// A fixed-size Bloom filter keyed by [`Fingerprint`].
#[derive(Clone, Debug)]
pub struct BloomFilter {
    bits: Vec<u64>,
    num_bits: u64,
    num_hashes: u32,
    inserted: u64,
}

impl BloomFilter {
    /// Sizes the filter for `expected_items` at the target false-positive
    /// rate, using the standard optima `m = -n·ln p / (ln 2)²` and
    /// `k = (m/n)·ln 2`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < fp_rate < 1` and `expected_items > 0`.
    #[must_use]
    pub fn with_capacity(expected_items: u64, fp_rate: f64) -> Self {
        assert!(expected_items > 0, "expected_items must be positive");
        assert!(
            fp_rate > 0.0 && fp_rate < 1.0,
            "false-positive rate must be in (0, 1)"
        );
        let n = expected_items as f64;
        let ln2 = std::f64::consts::LN_2;
        let m = (-n * fp_rate.ln() / (ln2 * ln2)).ceil().max(64.0) as u64;
        let k = ((m as f64 / n) * ln2).round().max(1.0) as u32;
        BloomFilter {
            bits: vec![0u64; (m as usize).div_ceil(64)],
            num_bits: m,
            num_hashes: k,
            inserted: 0,
        }
    }

    /// The paper's configuration: 1% false positives (7 hash functions).
    #[must_use]
    pub fn paper_default(expected_items: u64) -> Self {
        Self::with_capacity(expected_items, 0.01)
    }

    /// Inserts a fingerprint.
    pub fn insert(&mut self, fp: Fingerprint) {
        let (h1, h2) = hash_pair(fp);
        for i in 0..self.num_hashes {
            let bit = self.bit_for(h1, h2, i);
            self.bits[(bit / 64) as usize] |= 1u64 << (bit % 64);
        }
        self.inserted += 1;
    }

    /// Tests membership. May return `true` for items never inserted (false
    /// positive) but never `false` for inserted items.
    #[must_use]
    pub fn contains(&self, fp: Fingerprint) -> bool {
        let (h1, h2) = hash_pair(fp);
        (0..self.num_hashes).all(|i| {
            let bit = self.bit_for(h1, h2, i);
            self.bits[(bit / 64) as usize] & (1u64 << (bit % 64)) != 0
        })
    }

    fn bit_for(&self, h1: u64, h2: u64, i: u32) -> u64 {
        // Kirsch–Mitzenmacher double hashing.
        h1.wrapping_add(u64::from(i).wrapping_mul(h2)) % self.num_bits
    }

    /// Number of hash functions in use.
    #[must_use]
    pub fn num_hashes(&self) -> u32 {
        self.num_hashes
    }

    /// Size of the bit array in bits.
    #[must_use]
    pub fn num_bits(&self) -> u64 {
        self.num_bits
    }

    /// Size of the bit array in bytes (the paper's "Bloom filter size is
    /// around 74 MB" for 65M fingerprints).
    #[must_use]
    pub fn size_bytes(&self) -> u64 {
        self.num_bits.div_ceil(8)
    }

    /// Number of insert operations performed.
    #[must_use]
    pub fn inserted(&self) -> u64 {
        self.inserted
    }
}

/// Two independent 64-bit hashes of a fingerprint (splitmix64 finalizers with
/// distinct stream constants).
fn hash_pair(fp: Fingerprint) -> (u64, u64) {
    (
        splitmix(fp.value() ^ 0x9e37_79b9_7f4a_7c15),
        splitmix(fp.value() ^ 0xbf58_476d_1ce4_e5b9) | 1,
    )
}

fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_false_negatives() {
        let mut bloom = BloomFilter::paper_default(10_000);
        for i in 0..10_000u64 {
            bloom.insert(Fingerprint(i * 2654435761));
        }
        for i in 0..10_000u64 {
            assert!(bloom.contains(Fingerprint(i * 2654435761)));
        }
    }

    #[test]
    fn false_positive_rate_near_target() {
        let n = 50_000u64;
        let mut bloom = BloomFilter::paper_default(n);
        for i in 0..n {
            bloom.insert(Fingerprint(i));
        }
        let probes = 100_000u64;
        let fps = (0..probes)
            .filter(|&i| bloom.contains(Fingerprint(u64::MAX - i)))
            .count();
        let rate = fps as f64 / probes as f64;
        assert!(rate < 0.03, "observed false-positive rate {rate}");
    }

    #[test]
    fn paper_configuration_seven_hashes() {
        let bloom = BloomFilter::paper_default(65_000_000);
        assert_eq!(bloom.num_hashes(), 7);
        // ≈ 9.6 bits/element → ~78 MB for 65M items, matching the paper's
        // "around 74 MB" figure (they round differently).
        let mb = bloom.size_bytes() as f64 / (1024.0 * 1024.0);
        assert!((60.0..90.0).contains(&mb), "bloom size {mb} MB");
    }

    #[test]
    fn empty_filter_contains_nothing_mostly() {
        let bloom = BloomFilter::paper_default(1000);
        let hits = (0..1000u64)
            .filter(|&i| bloom.contains(Fingerprint(i)))
            .count();
        assert_eq!(hits, 0);
    }

    #[test]
    fn insert_counter() {
        let mut bloom = BloomFilter::paper_default(100);
        bloom.insert(Fingerprint(1));
        bloom.insert(Fingerprint(1));
        assert_eq!(bloom.inserted(), 2);
    }

    #[test]
    #[should_panic(expected = "false-positive rate")]
    fn rejects_bad_rate() {
        let _ = BloomFilter::with_capacity(10, 1.5);
    }

    #[test]
    #[should_panic(expected = "expected_items")]
    fn rejects_zero_capacity() {
        let _ = BloomFilter::with_capacity(0, 0.01);
    }

    #[test]
    fn tiny_filter_still_works() {
        let mut bloom = BloomFilter::with_capacity(1, 0.5);
        bloom.insert(Fingerprint(42));
        assert!(bloom.contains(Fingerprint(42)));
    }
}
