//! Deterministic fault injection for the persistence layer.
//!
//! Every durable write and fsync in [`crate::log`], [`crate::manifest`]
//! and [`crate::persist`] consults an [`IoPolicy`] through the
//! [`IoPolicyHandle`] carried by
//! [`PersistConfig`](crate::persist::PersistConfig). The default handle is
//! empty — production paths pay one `Option` branch per durable operation
//! and nothing else. Tests install a policy to simulate the classic crash
//! shapes at any individual site:
//!
//! * **short write** — a prefix of the bytes lands, then the operation
//!   errors, leaving exactly the torn-tail shape the recovery invariant
//!   (DESIGN.md §7) must tolerate;
//! * **fsync failure** — the data may be in the page cache but durability
//!   was never confirmed, so recovery must not rely on it;
//! * **hard failure** — the operation errors before any byte lands.
//!
//! The engine's reaction to a persist error mid-ingest is a panic
//! (fail-stop), which the crash-matrix tests catch with
//! `std::panic::catch_unwind` before reopening the directory — the same
//! technique the torn-tail suite uses, now reaching sites a file-truncation
//! test cannot (fsync failures, mid-journal appends, snapshot renames).

use std::collections::HashMap;
use std::fmt;
use std::fs::File;
use std::io::Write;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

use crate::persist::{FsyncPolicy, PersistError};

/// A durable operation site in the persistence layer. One value per
/// distinct crash point: failing at each site exercises a different edge
/// of the write-ahead ordering.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PersistSite {
    /// Container log body (`container-NNNNNNNN.clog` create + records).
    ContainerWrite,
    /// Container log fsync (before its manifest record — the write-ahead
    /// ordering edge).
    ContainerSync,
    /// Manifest journal header write at create/reopen.
    ManifestHeader,
    /// A seal/delete record appended to the manifest journal.
    ManifestAppend,
    /// Manifest journal fsync after an append.
    ManifestSync,
    /// Snapshot temp-file body write.
    SnapshotWrite,
    /// Snapshot temp-file fsync before the rename.
    SnapshotSync,
    /// The atomic rename that publishes `index.snap`.
    SnapshotRename,
    /// `store.meta` write at directory creation.
    MetaWrite,
    /// Backup recipe file body write (`recipe-*.rcp`, before its manifest
    /// record — the lifecycle write-ahead edge).
    RecipeWrite,
    /// Backup recipe file fsync before the manifest record.
    RecipeSync,
    /// Rekeyed container temp-file body write (`.clog.tmp`).
    RekeyWrite,
    /// Rekeyed container temp-file fsync before the rename.
    RekeySync,
    /// The atomic rename that publishes a rekeyed container log.
    RekeyRename,
    /// Directory-entry fsync after a create or rename.
    DirSync,
}

/// All injection sites, in write-ahead order — the crash-matrix tests
/// iterate this.
pub const ALL_SITES: [PersistSite; 15] = [
    PersistSite::MetaWrite,
    PersistSite::ManifestHeader,
    PersistSite::ContainerWrite,
    PersistSite::ContainerSync,
    PersistSite::RecipeWrite,
    PersistSite::RecipeSync,
    PersistSite::ManifestAppend,
    PersistSite::ManifestSync,
    PersistSite::RekeyWrite,
    PersistSite::RekeySync,
    PersistSite::RekeyRename,
    PersistSite::SnapshotWrite,
    PersistSite::SnapshotSync,
    PersistSite::SnapshotRename,
    PersistSite::DirSync,
];

/// What an [`IoPolicy`] tells a site to do.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultAction {
    /// Perform the operation normally.
    Proceed,
    /// Write only the first `n` bytes, then fail — a torn write. At a sync
    /// site (where there are no bytes) this degrades to [`Self::Fail`].
    ShortWrite(usize),
    /// Fail without performing the operation.
    Fail,
}

/// A fault-injection policy consulted before every durable operation.
///
/// Implementations are stateful by design (count operations, fire once,
/// follow a seeded schedule); the handle serializes calls behind a mutex,
/// so `&mut self` is safe even when shards write concurrently.
pub trait IoPolicy: Send {
    /// Called before writing `len` bytes at `site`.
    fn before_write(&mut self, site: PersistSite, len: usize) -> FaultAction;
    /// Called before an fsync (of a file or directory) at `site`.
    fn before_sync(&mut self, site: PersistSite) -> FaultAction;
}

/// A cloneable, shareable handle to an optional [`IoPolicy`].
///
/// The default (empty) handle is what every production
/// [`PersistConfig`](crate::persist::PersistConfig) carries: each durable
/// operation then costs a single `Option::is_none` branch. Clones share
/// the same underlying policy, so a
/// [`ShardedDedupEngine`](crate::sharded::ShardedDedupEngine) threading
/// one config into N shard directories drives all shards from one
/// schedule.
#[derive(Clone, Default)]
pub struct IoPolicyHandle {
    inner: Option<Arc<Mutex<Box<dyn IoPolicy>>>>,
}

impl IoPolicyHandle {
    /// The empty handle (no injection; the production default).
    #[must_use]
    pub fn none() -> Self {
        IoPolicyHandle::default()
    }

    /// Wraps a policy for injection.
    pub fn new(policy: impl IoPolicy + 'static) -> Self {
        IoPolicyHandle {
            inner: Some(Arc::new(Mutex::new(Box::new(policy)))),
        }
    }

    /// Whether a policy is installed.
    #[must_use]
    pub fn is_active(&self) -> bool {
        self.inner.is_some()
    }

    /// Consults the policy before a write. Empty handle: [`FaultAction::Proceed`].
    pub(crate) fn before_write(&self, site: PersistSite, len: usize) -> FaultAction {
        match &self.inner {
            None => FaultAction::Proceed,
            Some(p) => p
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .before_write(site, len),
        }
    }

    /// Consults the policy before a sync; returns the typed injection
    /// error when the policy fails the site.
    pub(crate) fn check_sync(&self, site: PersistSite) -> Result<(), PersistError> {
        let action = match &self.inner {
            None => FaultAction::Proceed,
            Some(p) => p
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .before_sync(site),
        };
        match action {
            FaultAction::Proceed => Ok(()),
            FaultAction::ShortWrite(_) | FaultAction::Fail => Err(PersistError::Injected { site }),
        }
    }
}

impl fmt::Debug for IoPolicyHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(if self.inner.is_some() {
            "IoPolicyHandle(active)"
        } else {
            "IoPolicyHandle(none)"
        })
    }
}

/// Handles compare equal regardless of policy: the policy is test
/// instrumentation, not configuration, and must not affect config
/// round-trip equality (`store.meta` does not echo it either).
impl PartialEq for IoPolicyHandle {
    fn eq(&self, _other: &Self) -> bool {
        true
    }
}

impl Eq for IoPolicyHandle {}

/// The `io::Error` used for injected write faults on buffered paths (the
/// container log, snapshot and meta writers go through `BufWriter`, whose
/// error type is `io::Error`); it surfaces as [`PersistError::Io`].
pub(crate) fn injected_io_error(site: PersistSite) -> std::io::Error {
    std::io::Error::other(format!("injected fault at {site:?}"))
}

/// Policy-checked `write_all` for the unbuffered persistence paths (the
/// manifest journal writes whole records directly); a short write lands
/// its prefix then surfaces the typed [`PersistError::Injected`].
pub(crate) fn write_checked(
    file: &mut File,
    bytes: &[u8],
    io: &IoPolicyHandle,
    site: PersistSite,
) -> Result<(), PersistError> {
    match io.before_write(site, bytes.len()) {
        FaultAction::Proceed => {
            file.write_all(bytes)?;
            Ok(())
        }
        FaultAction::ShortWrite(n) => {
            file.write_all(&bytes[..n.min(bytes.len())])?;
            Err(PersistError::Injected { site })
        }
        FaultAction::Fail => Err(PersistError::Injected { site }),
    }
}

/// A `File` wrapper that consults the policy on every write, used by the
/// buffered (`CrcSink` over `BufWriter`) persistence paths.
#[derive(Debug)]
pub(crate) struct FaultFile {
    file: File,
    io: IoPolicyHandle,
    site: PersistSite,
}

impl FaultFile {
    pub(crate) fn new(file: File, io: IoPolicyHandle, site: PersistSite) -> Self {
        FaultFile { file, io, site }
    }

    /// Policy-checked [`crate::persist::maybe_sync`] of the wrapped file,
    /// under the *sync* site for this file (distinct from the write site).
    pub(crate) fn maybe_sync(
        &self,
        policy: FsyncPolicy,
        site: PersistSite,
    ) -> Result<(), PersistError> {
        if policy == FsyncPolicy::Always {
            self.io.check_sync(site)?;
            self.file.sync_all()?;
        }
        Ok(())
    }
}

impl Write for FaultFile {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self.io.before_write(self.site, buf.len()) {
            FaultAction::Proceed => self.file.write(buf),
            FaultAction::ShortWrite(n) => {
                let n = n.min(buf.len());
                self.file.write_all(&buf[..n])?;
                Err(injected_io_error(self.site))
            }
            FaultAction::Fail => Err(injected_io_error(self.site)),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.file.flush()
    }
}

// ---------------------------------------------------------------------------
// Ready-made policies for the crash-matrix tests.
// ---------------------------------------------------------------------------

/// Counts operations per site without injecting anything. A probe run
/// with this policy tells the crash matrix how many (site, k) crash
/// points a workload has.
#[derive(Default)]
pub struct CountingPolicy {
    counts: Arc<Mutex<HashMap<PersistSite, u64>>>,
}

impl CountingPolicy {
    /// A fresh counter.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Shared view of the counts (clone before installing the policy).
    #[must_use]
    pub fn counts(&self) -> Arc<Mutex<HashMap<PersistSite, u64>>> {
        Arc::clone(&self.counts)
    }
}

impl IoPolicy for CountingPolicy {
    fn before_write(&mut self, site: PersistSite, _len: usize) -> FaultAction {
        *self
            .counts
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .entry(site)
            .or_insert(0) += 1;
        FaultAction::Proceed
    }

    fn before_sync(&mut self, site: PersistSite) -> FaultAction {
        self.before_write(site, 0)
    }
}

/// How [`FailAt`] fails its target operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FailMode {
    /// Error without touching the file.
    Error,
    /// Tear the write in half (sync sites degrade to [`Self::Error`]).
    Torn,
}

/// Lets the first `skip` operations at `site` through, injects once, then
/// proceeds forever (by then the engine has already panicked or the caller
/// has observed the error).
pub struct FailAt {
    site: PersistSite,
    skip: u64,
    mode: FailMode,
    fired: Arc<AtomicBool>,
}

impl FailAt {
    /// A policy that fails the `skip`-th (0-based) operation at `site`.
    #[must_use]
    pub fn new(site: PersistSite, skip: u64, mode: FailMode) -> Self {
        FailAt {
            site,
            skip,
            mode,
            fired: Arc::new(AtomicBool::new(false)),
        }
    }

    /// Shared flag set once the fault has been injected (clone before
    /// installing the policy). A matrix cell whose fault never fired did
    /// not actually test anything — assert on this.
    #[must_use]
    pub fn fired(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.fired)
    }

    fn decide(&mut self, site: PersistSite, len: usize, is_sync: bool) -> FaultAction {
        if site != self.site || self.fired.load(Ordering::Relaxed) {
            return FaultAction::Proceed;
        }
        if self.skip > 0 {
            self.skip -= 1;
            return FaultAction::Proceed;
        }
        self.fired.store(true, Ordering::Relaxed);
        match self.mode {
            FailMode::Error => FaultAction::Fail,
            FailMode::Torn if is_sync => FaultAction::Fail,
            FailMode::Torn => FaultAction::ShortWrite(len / 2),
        }
    }
}

impl IoPolicy for FailAt {
    fn before_write(&mut self, site: PersistSite, len: usize) -> FaultAction {
        self.decide(site, len, false)
    }

    fn before_sync(&mut self, site: PersistSite) -> FaultAction {
        self.decide(site, 0, true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_handle_always_proceeds() {
        let h = IoPolicyHandle::none();
        assert!(!h.is_active());
        assert_eq!(
            h.before_write(PersistSite::ContainerWrite, 100),
            FaultAction::Proceed
        );
        assert!(h.check_sync(PersistSite::ContainerSync).is_ok());
    }

    #[test]
    fn fail_at_skips_then_fires_once() {
        let policy = FailAt::new(PersistSite::ManifestAppend, 2, FailMode::Error);
        let fired = policy.fired();
        let h = IoPolicyHandle::new(policy);
        assert!(h.is_active());
        for _ in 0..2 {
            assert_eq!(
                h.before_write(PersistSite::ManifestAppend, 10),
                FaultAction::Proceed
            );
        }
        // Other sites never trip the countdown.
        assert_eq!(
            h.before_write(PersistSite::ContainerWrite, 10),
            FaultAction::Proceed
        );
        assert_eq!(
            h.before_write(PersistSite::ManifestAppend, 10),
            FaultAction::Fail
        );
        assert!(fired.load(Ordering::Relaxed));
        // One-shot: later operations proceed.
        assert_eq!(
            h.before_write(PersistSite::ManifestAppend, 10),
            FaultAction::Proceed
        );
    }

    #[test]
    fn torn_mode_halves_writes_and_fails_syncs() {
        let h = IoPolicyHandle::new(FailAt::new(PersistSite::SnapshotWrite, 0, FailMode::Torn));
        assert_eq!(
            h.before_write(PersistSite::SnapshotWrite, 64),
            FaultAction::ShortWrite(32)
        );
        let h = IoPolicyHandle::new(FailAt::new(PersistSite::SnapshotSync, 0, FailMode::Torn));
        assert!(matches!(
            h.check_sync(PersistSite::SnapshotSync),
            Err(PersistError::Injected { .. })
        ));
    }

    #[test]
    fn counting_policy_tallies_per_site() {
        let policy = CountingPolicy::new();
        let counts = policy.counts();
        let h = IoPolicyHandle::new(policy);
        h.before_write(PersistSite::ContainerWrite, 1);
        h.before_write(PersistSite::ContainerWrite, 1);
        let _ = h.check_sync(PersistSite::ContainerSync);
        let counts = counts.lock().unwrap();
        assert_eq!(counts.get(&PersistSite::ContainerWrite), Some(&2));
        assert_eq!(counts.get(&PersistSite::ContainerSync), Some(&1));
    }

    #[test]
    fn handles_compare_equal() {
        // Policy presence must not break PersistConfig equality.
        let a = IoPolicyHandle::none();
        let b = IoPolicyHandle::new(CountingPolicy::new());
        assert_eq!(a, b);
        assert!(format!("{b:?}").contains("active"));
    }
}
