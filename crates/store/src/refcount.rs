//! Per-chunk reference counts over committed backups.
//!
//! A chunk's count is the number of *logical occurrences* of its
//! fingerprint across every committed, not-yet-deleted backup recipe
//! (REED semantics: references belong to backups, not uploads — chunks
//! ingested but never committed carry no references and are GC-fodder).
//! The counts are an in-memory structure, never persisted: recovery
//! rebuilds them by replaying the surviving recipe files, so the on-disk
//! formats stay free of refcount state and its crash-consistency burden.

use std::collections::HashMap;

use freqdedup_trace::{ChunkRecord, Fingerprint};

/// In-memory reference counts: fingerprint → logical occurrences across
/// committed backups. Zero-count entries are removed eagerly so the map
/// size tracks the live fingerprint population.
#[derive(Clone, Debug, Default)]
pub struct RefCounts {
    counts: HashMap<Fingerprint, u64>,
}

impl RefCounts {
    /// An empty table.
    #[must_use]
    pub fn new() -> Self {
        RefCounts::default()
    }

    /// The reference count of `fp` (0 when unreferenced).
    #[must_use]
    pub fn get(&self, fp: Fingerprint) -> u64 {
        self.counts.get(&fp).copied().unwrap_or(0)
    }

    /// Whether any committed backup still references `fp`.
    #[must_use]
    pub fn is_live(&self, fp: Fingerprint) -> bool {
        self.counts.contains_key(&fp)
    }

    /// Number of distinct referenced fingerprints.
    #[must_use]
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// Whether no fingerprint is referenced.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Adds one reference per chunk occurrence in a committed recipe.
    pub fn add_recipe(&mut self, chunks: &[ChunkRecord]) {
        for c in chunks {
            *self.counts.entry(c.fp).or_insert(0) += 1;
        }
    }

    /// Releases one reference per chunk occurrence of a deleted recipe.
    ///
    /// # Panics
    ///
    /// Panics on underflow — releasing a recipe that was never added means
    /// the caller's backup bookkeeping has diverged from the counts, which
    /// is a logic error, not a recoverable condition.
    pub fn release_recipe(&mut self, chunks: &[ChunkRecord]) {
        for c in chunks {
            match self.counts.get_mut(&c.fp) {
                Some(n) if *n > 1 => *n -= 1,
                Some(_) => {
                    self.counts.remove(&c.fp);
                }
                None => panic!("refcount underflow for {:?}", c.fp),
            }
        }
    }

    /// Total references across all fingerprints (equals the summed logical
    /// lengths of committed backups).
    #[must_use]
    pub fn total(&self) -> u64 {
        self.counts.values().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chunks(fps: &[u64]) -> Vec<ChunkRecord> {
        fps.iter().map(|&v| ChunkRecord::new(v, 8)).collect()
    }

    #[test]
    fn add_and_release_round_trip() {
        let mut rc = RefCounts::new();
        let a = chunks(&[1, 2, 2, 3]);
        let b = chunks(&[2, 3, 4]);
        rc.add_recipe(&a);
        rc.add_recipe(&b);
        assert_eq!(rc.get(Fingerprint(2)), 3);
        assert_eq!(rc.get(Fingerprint(4)), 1);
        assert_eq!(rc.total(), 7);
        rc.release_recipe(&a);
        assert_eq!(rc.get(Fingerprint(1)), 0);
        assert!(!rc.is_live(Fingerprint(1)));
        assert_eq!(rc.get(Fingerprint(2)), 1);
        assert!(rc.is_live(Fingerprint(3)));
        rc.release_recipe(&b);
        assert!(rc.is_empty());
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn release_of_unknown_recipe_panics() {
        let mut rc = RefCounts::new();
        rc.release_recipe(&chunks(&[9]));
    }

    #[test]
    fn zero_count_entries_are_dropped() {
        let mut rc = RefCounts::new();
        rc.add_recipe(&chunks(&[5]));
        rc.release_recipe(&chunks(&[5]));
        assert_eq!(rc.len(), 0, "no tombstones");
    }
}
