//! The in-memory LRU fingerprint cache (§7.4.1, step S4).
//!
//! On an index hit, DDFS prefetches the fingerprints of the whole enclosing
//! container into this cache, exploiting chunk locality: "the logically
//! nearby chunks of C are likely to be accessed together". When full, "our
//! prototype removes the least-recently-used fingerprints".
//!
//! Capacity is expressed in fingerprint-metadata entries (the paper accounts
//! 32 bytes per fingerprint, so a 512 MB cache holds 16 Mi entries).
//!
//! Implemented as a hash map into an intrusive doubly-linked list arena —
//! O(1) lookup, touch, insert and eviction with no unsafe code.

use std::collections::HashMap;

use freqdedup_trace::Fingerprint;

const NIL: usize = usize::MAX;

#[derive(Clone, Debug)]
struct Node {
    fp: Fingerprint,
    prev: usize,
    next: usize,
}

/// An LRU set of fingerprints with O(1) operations.
#[derive(Clone, Debug)]
pub struct FingerprintCache {
    map: HashMap<Fingerprint, usize>,
    arena: Vec<Node>,
    free: Vec<usize>,
    head: usize, // most recently used
    tail: usize, // least recently used
    capacity: usize,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl FingerprintCache {
    /// Creates a cache holding at most `capacity` fingerprints.
    ///
    /// A zero-capacity cache is permitted and simply never holds anything
    /// (useful for ablations that disable caching).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        FingerprintCache {
            map: HashMap::with_capacity(capacity.min(1 << 22)),
            arena: Vec::with_capacity(capacity.min(1 << 22)),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            capacity,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Sizes the cache from a byte budget and a per-entry metadata size
    /// (the paper uses 32-byte entries).
    #[must_use]
    pub fn with_byte_budget(bytes: u64, entry_bytes: u64) -> Self {
        assert!(entry_bytes > 0, "entry size must be positive");
        Self::new((bytes / entry_bytes) as usize)
    }

    /// Number of fingerprints currently cached.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The configured capacity in entries.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Looks up a fingerprint; on a hit the entry becomes most recently
    /// used. Hit/miss counters are updated.
    pub fn lookup(&mut self, fp: Fingerprint) -> bool {
        match self.map.get(&fp).copied() {
            Some(node) => {
                self.touch(node);
                self.hits += 1;
                true
            }
            None => {
                self.misses += 1;
                false
            }
        }
    }

    /// Tests membership without updating recency or counters.
    #[must_use]
    pub fn peek(&self, fp: Fingerprint) -> bool {
        self.map.contains_key(&fp)
    }

    /// Inserts one fingerprint as most recently used, evicting the LRU entry
    /// if the cache is full. Re-inserting an existing entry only refreshes
    /// its recency.
    pub fn insert(&mut self, fp: Fingerprint) {
        if self.capacity == 0 {
            return;
        }
        if let Some(&node) = self.map.get(&fp) {
            self.touch(node);
            return;
        }
        if self.map.len() >= self.capacity {
            self.evict_lru();
        }
        let node = self.alloc(fp);
        self.push_front(node);
        self.map.insert(fp, node);
    }

    /// Bulk-inserts the fingerprints of a prefetched container (step S4).
    pub fn insert_container(&mut self, fps: &[Fingerprint]) {
        for &fp in fps {
            self.insert(fp);
        }
    }

    /// Drops `fp` from the cache if present, preserving the recency order
    /// of the remaining entries. This is an *invalidation* (GC removed the
    /// chunk from the store), not a capacity eviction, so the eviction
    /// counter is untouched. Returns whether the entry existed.
    pub fn remove(&mut self, fp: Fingerprint) -> bool {
        match self.map.remove(&fp) {
            Some(node) => {
                self.unlink(node);
                self.free.push(node);
                true
            }
            None => false,
        }
    }

    /// Cache hits observed so far.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cache misses observed so far.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Number of evicted entries so far.
    #[must_use]
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// The cached fingerprints in least→most recently used order (the
    /// serialization order of the persistence snapshot: re-inserting them
    /// front-to-back reproduces the exact recency chain).
    #[must_use]
    pub fn lru_to_mru(&self) -> Vec<Fingerprint> {
        let mut out = Vec::with_capacity(self.map.len());
        let mut node = self.tail;
        while node != NIL {
            out.push(self.arena[node].fp);
            node = self.arena[node].prev;
        }
        out
    }

    /// Rebuilds the recency chain from a snapshot: inserts `fps` (given in
    /// least→most recently used order) and overwrites the observational
    /// counters with their recovered values.
    pub(crate) fn restore(&mut self, fps: &[Fingerprint], hits: u64, misses: u64, evictions: u64) {
        for &fp in fps {
            self.insert(fp);
        }
        self.hits = hits;
        self.misses = misses;
        self.evictions = evictions;
    }

    fn alloc(&mut self, fp: Fingerprint) -> usize {
        if let Some(i) = self.free.pop() {
            self.arena[i] = Node {
                fp,
                prev: NIL,
                next: NIL,
            };
            i
        } else {
            self.arena.push(Node {
                fp,
                prev: NIL,
                next: NIL,
            });
            self.arena.len() - 1
        }
    }

    fn push_front(&mut self, node: usize) {
        self.arena[node].prev = NIL;
        self.arena[node].next = self.head;
        if self.head != NIL {
            self.arena[self.head].prev = node;
        }
        self.head = node;
        if self.tail == NIL {
            self.tail = node;
        }
    }

    fn unlink(&mut self, node: usize) {
        let (prev, next) = (self.arena[node].prev, self.arena[node].next);
        if prev != NIL {
            self.arena[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.arena[next].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn touch(&mut self, node: usize) {
        if self.head == node {
            return;
        }
        self.unlink(node);
        self.push_front(node);
    }

    fn evict_lru(&mut self) {
        let victim = self.tail;
        debug_assert_ne!(victim, NIL, "evict on empty cache");
        self.unlink(victim);
        let fp = self.arena[victim].fp;
        self.map.remove(&fp);
        self.free.push(victim);
        self.evictions += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp(v: u64) -> Fingerprint {
        Fingerprint(v)
    }

    #[test]
    fn insert_and_lookup() {
        let mut c = FingerprintCache::new(4);
        c.insert(fp(1));
        assert!(c.lookup(fp(1)));
        assert!(!c.lookup(fp(2)));
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut c = FingerprintCache::new(3);
        c.insert(fp(1));
        c.insert(fp(2));
        c.insert(fp(3));
        // Touch 1 so 2 becomes LRU.
        assert!(c.lookup(fp(1)));
        c.insert(fp(4));
        assert!(c.peek(fp(1)));
        assert!(!c.peek(fp(2)), "2 should have been evicted");
        assert!(c.peek(fp(3)));
        assert!(c.peek(fp(4)));
        assert_eq!(c.evictions(), 1);
    }

    #[test]
    fn reinsert_refreshes_recency() {
        let mut c = FingerprintCache::new(2);
        c.insert(fp(1));
        c.insert(fp(2));
        c.insert(fp(1)); // refresh
        c.insert(fp(3)); // evicts 2, not 1
        assert!(c.peek(fp(1)));
        assert!(!c.peek(fp(2)));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn capacity_never_exceeded() {
        let mut c = FingerprintCache::new(10);
        for i in 0..1000 {
            c.insert(fp(i));
            assert!(c.len() <= 10);
        }
        assert_eq!(c.len(), 10);
        // The survivors are the 10 most recent.
        for i in 990..1000 {
            assert!(c.peek(fp(i)));
        }
    }

    #[test]
    fn remove_invalidates_without_counting_eviction() {
        let mut c = FingerprintCache::new(4);
        for v in [1u64, 2, 3, 4] {
            c.insert(fp(v));
        }
        assert!(c.remove(fp(2)));
        assert!(!c.remove(fp(2)), "already gone");
        assert!(!c.peek(fp(2)));
        assert_eq!(c.evictions(), 0, "invalidation is not an eviction");
        assert_eq!(c.lru_to_mru(), vec![fp(1), fp(3), fp(4)]);
        // The freed slot is reusable and the chain stays coherent.
        c.insert(fp(5));
        assert_eq!(c.lru_to_mru(), vec![fp(1), fp(3), fp(4), fp(5)]);
        assert!(c.arena.len() <= 4);
    }

    #[test]
    fn zero_capacity_cache_is_inert() {
        let mut c = FingerprintCache::new(0);
        c.insert(fp(1));
        assert!(!c.lookup(fp(1)));
        assert_eq!(c.len(), 0);
    }

    #[test]
    fn container_bulk_insert() {
        let mut c = FingerprintCache::new(100);
        let fps: Vec<Fingerprint> = (0..50).map(fp).collect();
        c.insert_container(&fps);
        assert_eq!(c.len(), 50);
        assert!(c.peek(fp(0)));
        assert!(c.peek(fp(49)));
    }

    #[test]
    fn byte_budget_sizing() {
        let c = FingerprintCache::with_byte_budget(512 * 1024 * 1024, 32);
        assert_eq!(c.capacity(), 16 * 1024 * 1024);
    }

    #[test]
    fn arena_slots_reused_after_eviction() {
        let mut c = FingerprintCache::new(2);
        for i in 0..100 {
            c.insert(fp(i));
        }
        // Arena should not have grown past capacity + O(1).
        assert!(c.arena.len() <= 3, "arena grew to {}", c.arena.len());
    }

    #[test]
    fn lru_to_mru_round_trips_recency() {
        let mut c = FingerprintCache::new(4);
        for v in [1u64, 2, 3, 4] {
            c.insert(fp(v));
        }
        assert!(c.lookup(fp(2))); // 2 becomes MRU: order 1,3,4,2
        assert_eq!(c.lru_to_mru(), vec![fp(1), fp(3), fp(4), fp(2)]);
        let mut rebuilt = FingerprintCache::new(4);
        rebuilt.restore(&c.lru_to_mru(), c.hits(), c.misses(), c.evictions());
        assert_eq!(rebuilt.lru_to_mru(), c.lru_to_mru());
        assert_eq!(rebuilt.hits(), c.hits());
        // Same next eviction on both.
        rebuilt.insert(fp(9));
        c.insert(fp(9));
        assert_eq!(rebuilt.lru_to_mru(), c.lru_to_mru());
    }

    #[test]
    fn heavy_random_workload_consistency() {
        // Cross-check against a naive model.
        let mut c = FingerprintCache::new(16);
        let mut model: Vec<u64> = Vec::new(); // front = MRU
        let mut x = 12345u64;
        for _ in 0..5000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let v = (x >> 48) % 64;
            let hit = c.lookup(fp(v));
            let model_hit = model.contains(&v);
            assert_eq!(hit, model_hit, "divergence on {v}");
            if model_hit {
                model.retain(|&m| m != v);
                model.insert(0, v);
            } else {
                c.insert(fp(v));
                if model.len() >= 16 {
                    model.pop();
                }
                model.insert(0, v);
            }
        }
    }
}
