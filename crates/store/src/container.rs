//! Containers: the on-disk unit of chunk storage (§7.4.1).
//!
//! Unique chunks are appended to an in-memory open container in logical
//! order; when the container reaches its size limit (4 MB by default, vs.
//! kilobyte-scale chunks) it is sealed and its fingerprint list becomes the
//! prefetch unit for the cache. Chunk payloads are optional: trace-driven
//! workloads store metadata only, content workloads store real bytes.

use std::collections::HashMap;

use freqdedup_trace::{ChunkRecord, Fingerprint};

/// Identifier of a sealed container.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct ContainerId(pub u32);

/// A sealed, immutable container.
#[derive(Clone, Debug)]
pub struct Container {
    /// This container's id.
    pub id: ContainerId,
    /// Fingerprints of the chunks in the container, in append order.
    pub fingerprints: Vec<Fingerprint>,
    /// Total chunk bytes in the container.
    pub data_bytes: u64,
    payload: Option<ContainerPayload>,
}

#[derive(Clone, Debug)]
struct ContainerPayload {
    bytes: Vec<u8>,
    /// Offset and length per chunk, index-aligned with `fingerprints`.
    extents: Vec<(u32, u32)>,
}

impl Container {
    /// Number of chunks in the container.
    #[must_use]
    pub fn len(&self) -> usize {
        self.fingerprints.len()
    }

    /// Whether the container holds no chunks.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.fingerprints.is_empty()
    }

    /// Reads a chunk payload by position, if payloads are stored.
    #[must_use]
    pub fn chunk_payload(&self, position: usize) -> Option<&[u8]> {
        let payload = self.payload.as_ref()?;
        let &(off, len) = payload.extents.get(position)?;
        Some(&payload.bytes[off as usize..(off + len) as usize])
    }
}

/// Payload bytes of the open container plus the `(offset, len)` range of
/// each chunk within them.
type OpenPayload = (Vec<u8>, Vec<(u32, u32)>);

/// The open (being-filled) container plus the catalog of sealed ones.
#[derive(Debug)]
pub struct ContainerStore {
    capacity_bytes: u64,
    sealed: Vec<Container>,
    open_records: Vec<ChunkRecord>,
    open_bytes: u64,
    open_payload: Option<OpenPayload>,
    /// Fast membership test for chunks still in the open container.
    open_set: HashMap<Fingerprint, usize>,
}

impl ContainerStore {
    /// Creates a store with the given container capacity in bytes (the paper
    /// uses 4 MB).
    ///
    /// # Panics
    ///
    /// Panics if `capacity_bytes` is zero.
    #[must_use]
    pub fn new(capacity_bytes: u64) -> Self {
        assert!(capacity_bytes > 0, "container capacity must be positive");
        ContainerStore {
            capacity_bytes,
            sealed: Vec::new(),
            open_records: Vec::new(),
            open_bytes: 0,
            open_payload: None,
            open_set: HashMap::new(),
        }
    }

    /// The paper's 4 MB configuration.
    #[must_use]
    pub fn paper_default() -> Self {
        Self::new(4 * 1024 * 1024)
    }

    /// Appends a unique chunk to the open container; seals the container
    /// first when it is full. Returns the id of the container sealed by this
    /// call, if any.
    pub fn append(&mut self, record: ChunkRecord, payload: Option<&[u8]>) -> Option<ContainerId> {
        let mut sealed_id = None;
        if self.open_bytes > 0 && self.open_bytes + u64::from(record.size) > self.capacity_bytes {
            sealed_id = Some(self.seal_open());
        }
        if let Some(bytes) = payload {
            debug_assert_eq!(bytes.len() as u32, record.size, "payload/size mismatch");
            let (buf, extents) = self
                .open_payload
                .get_or_insert_with(|| (Vec::new(), Vec::new()));
            let off = buf.len() as u32;
            buf.extend_from_slice(bytes);
            extents.push((off, record.size));
        }
        self.open_set.insert(record.fp, self.open_records.len());
        self.open_records.push(record);
        self.open_bytes += u64::from(record.size);
        sealed_id
    }

    /// Seals the open container (no-op when empty). Returns the id of the
    /// sealed container, if one was produced.
    pub fn flush(&mut self) -> Option<ContainerId> {
        if self.open_records.is_empty() {
            None
        } else {
            Some(self.seal_open())
        }
    }

    fn seal_open(&mut self) -> ContainerId {
        let id = ContainerId(self.sealed.len() as u32);
        let payload = self
            .open_payload
            .take()
            .map(|(bytes, extents)| ContainerPayload { bytes, extents });
        let records = std::mem::take(&mut self.open_records);
        self.open_set.clear();
        self.sealed.push(Container {
            id,
            fingerprints: records.iter().map(|r| r.fp).collect(),
            data_bytes: self.open_bytes,
            payload,
        });
        self.open_bytes = 0;
        id
    }

    /// Whether `fp` is in the *open* (not yet sealed) container.
    #[must_use]
    pub fn open_contains(&self, fp: Fingerprint) -> bool {
        self.open_set.contains_key(&fp)
    }

    /// Reads a chunk payload from the open container, if present.
    #[must_use]
    pub fn open_payload_of(&self, fp: Fingerprint) -> Option<&[u8]> {
        let &pos = self.open_set.get(&fp)?;
        let (buf, extents) = self.open_payload.as_ref()?;
        let (off, len) = *extents.get(pos)?;
        Some(&buf[off as usize..(off + len) as usize])
    }

    /// A sealed container by id.
    #[must_use]
    pub fn get(&self, id: ContainerId) -> Option<&Container> {
        self.sealed.get(id.0 as usize)
    }

    /// Number of sealed containers.
    #[must_use]
    pub fn sealed_count(&self) -> usize {
        self.sealed.len()
    }

    /// Total bytes in sealed containers plus the open container.
    #[must_use]
    pub fn stored_bytes(&self) -> u64 {
        self.sealed.iter().map(|c| c.data_bytes).sum::<u64>() + self.open_bytes
    }

    /// Iterates over sealed containers.
    pub fn iter(&self) -> std::slice::Iter<'_, Container> {
        self.sealed.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(fp: u64, size: u32) -> ChunkRecord {
        ChunkRecord::new(fp, size)
    }

    #[test]
    fn seals_when_full() {
        let mut store = ContainerStore::new(100);
        assert_eq!(store.append(rec(1, 60), None), None);
        // 60 + 60 > 100 → seal container 0 first.
        let sealed = store.append(rec(2, 60), None);
        assert_eq!(sealed, Some(ContainerId(0)));
        assert_eq!(store.sealed_count(), 1);
        let c = store.get(ContainerId(0)).unwrap();
        assert_eq!(c.fingerprints, vec![Fingerprint(1)]);
        assert_eq!(c.data_bytes, 60);
    }

    #[test]
    fn oversized_chunk_gets_own_container() {
        let mut store = ContainerStore::new(100);
        assert_eq!(store.append(rec(1, 250), None), None);
        let sealed = store.append(rec(2, 10), None);
        assert_eq!(sealed, Some(ContainerId(0)));
        assert_eq!(store.get(ContainerId(0)).unwrap().data_bytes, 250);
    }

    #[test]
    fn flush_seals_partial() {
        let mut store = ContainerStore::new(100);
        store.append(rec(1, 10), None);
        let id = store.flush().unwrap();
        assert_eq!(id, ContainerId(0));
        assert_eq!(store.flush(), None, "double flush is a no-op");
        assert_eq!(store.stored_bytes(), 10);
    }

    #[test]
    fn open_membership_tracks_sealing() {
        let mut store = ContainerStore::new(100);
        store.append(rec(1, 10), None);
        assert!(store.open_contains(Fingerprint(1)));
        store.flush();
        assert!(!store.open_contains(Fingerprint(1)));
    }

    #[test]
    fn payload_round_trip() {
        let mut store = ContainerStore::new(64);
        store.append(rec(1, 5), Some(b"hello"));
        store.append(rec(2, 5), Some(b"world"));
        assert_eq!(store.open_payload_of(Fingerprint(2)), Some(&b"world"[..]));
        store.flush();
        let c = store.get(ContainerId(0)).unwrap();
        assert_eq!(c.chunk_payload(0), Some(&b"hello"[..]));
        assert_eq!(c.chunk_payload(1), Some(&b"world"[..]));
        assert_eq!(c.chunk_payload(2), None);
    }

    #[test]
    fn metadata_only_containers_have_no_payload() {
        let mut store = ContainerStore::new(64);
        store.append(rec(1, 5), None);
        store.flush();
        assert_eq!(store.get(ContainerId(0)).unwrap().chunk_payload(0), None);
    }

    #[test]
    fn container_ids_sequential() {
        let mut store = ContainerStore::new(16);
        for i in 0..10 {
            store.append(rec(i, 16), None);
        }
        store.flush();
        let ids: Vec<u32> = store.iter().map(|c| c.id.0).collect();
        assert_eq!(ids, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn stored_bytes_includes_open() {
        let mut store = ContainerStore::new(100);
        store.append(rec(1, 30), None);
        store.append(rec(2, 30), None);
        assert_eq!(store.stored_bytes(), 60);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = ContainerStore::new(0);
    }
}
