//! Containers: the on-disk unit of chunk storage (§7.4.1).
//!
//! Unique chunks are appended to an in-memory open container in logical
//! order; when the container reaches its size limit (4 MB by default, vs.
//! kilobyte-scale chunks) it is sealed and its fingerprint list becomes the
//! prefetch unit for the cache. Chunk payloads are optional: trace-driven
//! workloads store metadata only, content workloads store real bytes — but
//! one store never mixes the two modes (see [`PayloadMode`]).
//!
//! Sealed containers are the durability unit of the persistent engine: each
//! one is written to its own append-only log file (see [`crate::log`]) at
//! seal time, and recovery rebuilds the catalog from those files.

use std::collections::HashMap;
use std::fmt;

use freqdedup_trace::{ChunkRecord, Fingerprint};

/// Identifier of a sealed container.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct ContainerId(pub u32);

/// Whether a store holds chunk payload bytes or metadata only.
///
/// The mode is fixed by the first append (or up front via
/// [`ContainerStore::with_mode`]); mixing modes afterwards is an error —
/// silently accepting a metadata-only append into a payload-bearing store
/// would desynchronize the payload extents from the fingerprint list and
/// corrupt position-based reads.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PayloadMode {
    /// Fingerprint + size records only (trace-driven workloads).
    Metadata,
    /// Real chunk bytes stored alongside each record (content workloads).
    Payload,
}

impl fmt::Display for PayloadMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PayloadMode::Metadata => write!(f, "metadata-only"),
            PayloadMode::Payload => write!(f, "payload-bearing"),
        }
    }
}

/// An append mixed payload-bearing and metadata-only chunks in one store.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MixedPayloadModeError {
    /// The mode the store was fixed to.
    pub store_mode: PayloadMode,
    /// The mode of the offending append.
    pub append_mode: PayloadMode,
}

impl fmt::Display for MixedPayloadModeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "mixed payload modes: {} append into a {} store",
            self.append_mode, self.store_mode
        )
    }
}

impl std::error::Error for MixedPayloadModeError {}

/// A sealed, immutable container.
#[derive(Clone, Debug)]
pub struct Container {
    /// This container's id.
    pub id: ContainerId,
    /// Fingerprints of the chunks in the container, in append order.
    pub fingerprints: Vec<Fingerprint>,
    /// Total chunk bytes in the container.
    pub data_bytes: u64,
    /// Chunk sizes in bytes, index-aligned with `fingerprints` (kept so the
    /// container log can frame each record and recovery can rebuild it).
    sizes: Vec<u32>,
    payload: Option<ContainerPayload>,
}

#[derive(Clone, Debug)]
struct ContainerPayload {
    bytes: Vec<u8>,
    /// Offset and length per chunk, index-aligned with `fingerprints`.
    extents: Vec<(u32, u32)>,
}

impl Container {
    /// Number of chunks in the container.
    #[must_use]
    pub fn len(&self) -> usize {
        self.fingerprints.len()
    }

    /// Whether the container holds no chunks.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.fingerprints.is_empty()
    }

    /// Per-chunk sizes in bytes, in append order.
    #[must_use]
    pub fn chunk_sizes(&self) -> &[u32] {
        &self.sizes
    }

    /// Whether the container stores payload bytes.
    #[must_use]
    pub fn has_payload(&self) -> bool {
        self.payload.is_some()
    }

    /// Reads a chunk payload by position, if payloads are stored.
    #[must_use]
    pub fn chunk_payload(&self, position: usize) -> Option<&[u8]> {
        let payload = self.payload.as_ref()?;
        let &(off, len) = payload.extents.get(position)?;
        Some(&payload.bytes[off as usize..(off + len) as usize])
    }

    /// Rebuilds a sealed container from recovered parts (the container-log
    /// reader's constructor). `payload` holds the concatenated chunk bytes
    /// when the store is payload-bearing; extents are derived from `sizes`.
    pub(crate) fn from_restored(
        id: ContainerId,
        fingerprints: Vec<Fingerprint>,
        sizes: Vec<u32>,
        payload: Option<Vec<u8>>,
    ) -> Self {
        debug_assert_eq!(fingerprints.len(), sizes.len());
        let data_bytes = sizes.iter().map(|&s| u64::from(s)).sum();
        let payload = payload.map(|bytes| {
            let mut extents = Vec::with_capacity(sizes.len());
            let mut off = 0u32;
            for &s in &sizes {
                extents.push((off, s));
                off += s;
            }
            ContainerPayload { bytes, extents }
        });
        Container {
            id,
            fingerprints,
            data_bytes,
            sizes,
            payload,
        }
    }
}

/// Payload bytes of the open container plus the `(offset, len)` range of
/// each chunk within them.
type OpenPayload = (Vec<u8>, Vec<(u32, u32)>);

/// The open (being-filled) container plus the catalog of sealed ones.
///
/// The catalog is a slot vector indexed by container id: ids are assigned
/// monotonically and never reused, so a GC pass that drops a container
/// leaves a `None` hole behind instead of renumbering its successors.
#[derive(Debug)]
pub struct ContainerStore {
    capacity_bytes: u64,
    mode: Option<PayloadMode>,
    slots: Vec<Option<Container>>,
    open_records: Vec<ChunkRecord>,
    open_bytes: u64,
    open_payload: Option<OpenPayload>,
    /// Fast membership test for chunks still in the open container.
    open_set: HashMap<Fingerprint, usize>,
}

impl ContainerStore {
    /// Creates a store with the given container capacity in bytes (the paper
    /// uses 4 MB). The payload mode is fixed by the first append.
    ///
    /// # Panics
    ///
    /// Panics if `capacity_bytes` is zero.
    #[must_use]
    pub fn new(capacity_bytes: u64) -> Self {
        assert!(capacity_bytes > 0, "container capacity must be positive");
        ContainerStore {
            capacity_bytes,
            mode: None,
            slots: Vec::new(),
            open_records: Vec::new(),
            open_bytes: 0,
            open_payload: None,
            open_set: HashMap::new(),
        }
    }

    /// Creates a store with the payload mode fixed up front, so the first
    /// append already enforces it.
    ///
    /// # Panics
    ///
    /// Panics if `capacity_bytes` is zero.
    #[must_use]
    pub fn with_mode(capacity_bytes: u64, mode: PayloadMode) -> Self {
        let mut store = Self::new(capacity_bytes);
        store.mode = Some(mode);
        store
    }

    /// The paper's 4 MB configuration.
    #[must_use]
    pub fn paper_default() -> Self {
        Self::new(4 * 1024 * 1024)
    }

    /// The store's payload mode, once fixed by construction or by the first
    /// append.
    #[must_use]
    pub fn mode(&self) -> Option<PayloadMode> {
        self.mode
    }

    /// Rebuilds a store from a recovered slot catalog (the recovery path).
    /// The open container starts empty; slot position is container id, and
    /// `None` slots are GC-dropped holes.
    pub(crate) fn restore(
        capacity_bytes: u64,
        mode: Option<PayloadMode>,
        slots: Vec<Option<Container>>,
    ) -> Self {
        debug_assert!(slots
            .iter()
            .enumerate()
            .all(|(i, s)| s.as_ref().is_none_or(|c| c.id.0 as usize == i)));
        let mut store = Self::new(capacity_bytes);
        store.mode = mode;
        store.slots = slots;
        store
    }

    /// Appends a unique chunk to the open container; seals the container
    /// first when it is full. Returns the id of the container sealed by this
    /// call, if any.
    ///
    /// # Errors
    ///
    /// Returns [`MixedPayloadModeError`] when `payload` presence disagrees
    /// with the store's fixed [`PayloadMode`]; the store is left unchanged.
    pub fn append(
        &mut self,
        record: ChunkRecord,
        payload: Option<&[u8]>,
    ) -> Result<Option<ContainerId>, MixedPayloadModeError> {
        let append_mode = if payload.is_some() {
            PayloadMode::Payload
        } else {
            PayloadMode::Metadata
        };
        match self.mode {
            None => self.mode = Some(append_mode),
            Some(store_mode) if store_mode != append_mode => {
                return Err(MixedPayloadModeError {
                    store_mode,
                    append_mode,
                })
            }
            Some(_) => {}
        }
        let mut sealed_id = None;
        if self.open_bytes > 0 && self.open_bytes + u64::from(record.size) > self.capacity_bytes {
            sealed_id = Some(self.seal_open());
        }
        if let Some(bytes) = payload {
            debug_assert_eq!(bytes.len() as u32, record.size, "payload/size mismatch");
            let (buf, extents) = self
                .open_payload
                .get_or_insert_with(|| (Vec::new(), Vec::new()));
            let off = buf.len() as u32;
            buf.extend_from_slice(bytes);
            extents.push((off, record.size));
        }
        self.open_set.insert(record.fp, self.open_records.len());
        self.open_records.push(record);
        self.open_bytes += u64::from(record.size);
        Ok(sealed_id)
    }

    /// Seals the open container (no-op when empty). Returns the id of the
    /// sealed container, if one was produced.
    pub fn flush(&mut self) -> Option<ContainerId> {
        if self.open_records.is_empty() {
            None
        } else {
            Some(self.seal_open())
        }
    }

    fn seal_open(&mut self) -> ContainerId {
        let id = ContainerId(self.slots.len() as u32);
        let payload = self
            .open_payload
            .take()
            .map(|(bytes, extents)| ContainerPayload { bytes, extents });
        let records = std::mem::take(&mut self.open_records);
        self.open_set.clear();
        self.slots.push(Some(Container {
            id,
            fingerprints: records.iter().map(|r| r.fp).collect(),
            data_bytes: self.open_bytes,
            sizes: records.iter().map(|r| r.size).collect(),
            payload,
        }));
        self.open_bytes = 0;
        id
    }

    /// Number of chunks currently buffered in the open container.
    #[must_use]
    pub fn open_len(&self) -> usize {
        self.open_records.len()
    }

    /// Whether `fp` is in the *open* (not yet sealed) container.
    #[must_use]
    pub fn open_contains(&self, fp: Fingerprint) -> bool {
        self.open_set.contains_key(&fp)
    }

    /// Reads a chunk payload from the open container, if present. When the
    /// same fingerprint was appended more than once, the latest append wins.
    #[must_use]
    pub fn open_payload_of(&self, fp: Fingerprint) -> Option<&[u8]> {
        let &pos = self.open_set.get(&fp)?;
        let (buf, extents) = self.open_payload.as_ref()?;
        let (off, len) = *extents.get(pos)?;
        Some(&buf[off as usize..(off + len) as usize])
    }

    /// A sealed container by id (`None` for never-assigned ids and for
    /// GC-dropped holes alike).
    #[must_use]
    pub fn get(&self, id: ContainerId) -> Option<&Container> {
        self.slots.get(id.0 as usize).and_then(Option::as_ref)
    }

    /// Number of live sealed containers (GC holes excluded).
    #[must_use]
    pub fn sealed_count(&self) -> usize {
        self.slots.iter().flatten().count()
    }

    /// The id the next sealed container will receive. Ids are monotonic
    /// and never reused, so this exceeds [`Self::sealed_count`] once GC
    /// has dropped containers.
    #[must_use]
    pub fn next_id(&self) -> u32 {
        self.slots.len() as u32
    }

    /// Removes a sealed container from the catalog, leaving a hole (the
    /// GC drop path). Returns the container, or `None` if the slot was
    /// already empty.
    pub(crate) fn remove(&mut self, id: ContainerId) -> Option<Container> {
        self.slots.get_mut(id.0 as usize).and_then(Option::take)
    }

    /// Total bytes in sealed containers plus the open container.
    #[must_use]
    pub fn stored_bytes(&self) -> u64 {
        self.slots
            .iter()
            .flatten()
            .map(|c| c.data_bytes)
            .sum::<u64>()
            + self.open_bytes
    }

    /// Iterates over live sealed containers in id order.
    pub fn iter(&self) -> impl Iterator<Item = &Container> {
        self.slots.iter().flatten()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(fp: u64, size: u32) -> ChunkRecord {
        ChunkRecord::new(fp, size)
    }

    #[test]
    fn seals_when_full() {
        let mut store = ContainerStore::new(100);
        assert_eq!(store.append(rec(1, 60), None), Ok(None));
        // 60 + 60 > 100 → seal container 0 first.
        let sealed = store.append(rec(2, 60), None).unwrap();
        assert_eq!(sealed, Some(ContainerId(0)));
        assert_eq!(store.sealed_count(), 1);
        let c = store.get(ContainerId(0)).unwrap();
        assert_eq!(c.fingerprints, vec![Fingerprint(1)]);
        assert_eq!(c.data_bytes, 60);
        assert_eq!(c.chunk_sizes(), &[60]);
    }

    #[test]
    fn oversized_chunk_gets_own_container() {
        let mut store = ContainerStore::new(100);
        assert_eq!(store.append(rec(1, 250), None), Ok(None));
        let sealed = store.append(rec(2, 10), None).unwrap();
        assert_eq!(sealed, Some(ContainerId(0)));
        assert_eq!(store.get(ContainerId(0)).unwrap().data_bytes, 250);
    }

    #[test]
    fn flush_seals_partial() {
        let mut store = ContainerStore::new(100);
        store.append(rec(1, 10), None).unwrap();
        let id = store.flush().unwrap();
        assert_eq!(id, ContainerId(0));
        assert_eq!(store.flush(), None, "double flush is a no-op");
        assert_eq!(store.stored_bytes(), 10);
    }

    #[test]
    fn flush_on_empty_store_is_noop() {
        // "Zero-capacity" flush: nothing buffered → no container, no state.
        let mut store = ContainerStore::new(100);
        assert_eq!(store.flush(), None);
        assert_eq!(store.sealed_count(), 0);
        assert_eq!(store.stored_bytes(), 0);
        assert_eq!(store.mode(), None, "mode still undecided");
    }

    #[test]
    fn open_membership_tracks_sealing() {
        let mut store = ContainerStore::new(100);
        store.append(rec(1, 10), None).unwrap();
        assert!(store.open_contains(Fingerprint(1)));
        store.flush();
        assert!(!store.open_contains(Fingerprint(1)));
    }

    #[test]
    fn payload_round_trip() {
        let mut store = ContainerStore::new(64);
        store.append(rec(1, 5), Some(b"hello")).unwrap();
        store.append(rec(2, 5), Some(b"world")).unwrap();
        assert_eq!(store.open_payload_of(Fingerprint(2)), Some(&b"world"[..]));
        store.flush();
        let c = store.get(ContainerId(0)).unwrap();
        assert_eq!(c.chunk_payload(0), Some(&b"hello"[..]));
        assert_eq!(c.chunk_payload(1), Some(&b"world"[..]));
        assert_eq!(c.chunk_payload(2), None);
        assert!(c.has_payload());
    }

    #[test]
    fn open_payload_of_after_seal_returns_none() {
        let mut store = ContainerStore::new(64);
        store.append(rec(1, 5), Some(b"hello")).unwrap();
        assert_eq!(store.open_payload_of(Fingerprint(1)), Some(&b"hello"[..]));
        store.flush();
        // Sealed: the open-container view no longer serves it (the sealed
        // container does, by position).
        assert_eq!(store.open_payload_of(Fingerprint(1)), None);
        assert_eq!(
            store.get(ContainerId(0)).unwrap().chunk_payload(0),
            Some(&b"hello"[..])
        );
    }

    #[test]
    fn duplicate_fingerprint_append_latest_wins() {
        // The engine never appends the same fingerprint twice (the open-set
        // buffer check runs first), but the store itself must stay coherent
        // if a caller does: both records are kept and counted, and the
        // open-container view resolves the fingerprint to the latest copy.
        let mut store = ContainerStore::new(1024);
        store.append(rec(7, 3), Some(b"old")).unwrap();
        store.append(rec(7, 3), Some(b"new")).unwrap();
        assert_eq!(store.open_payload_of(Fingerprint(7)), Some(&b"new"[..]));
        assert_eq!(store.stored_bytes(), 6, "both records counted");
        store.flush();
        let c = store.get(ContainerId(0)).unwrap();
        assert_eq!(c.len(), 2);
        assert_eq!(c.fingerprints, vec![Fingerprint(7), Fingerprint(7)]);
        assert_eq!(c.chunk_payload(0), Some(&b"old"[..]));
        assert_eq!(c.chunk_payload(1), Some(&b"new"[..]));
    }

    #[test]
    fn mixed_mode_append_rejected() {
        // Payload store refuses a metadata-only append...
        let mut store = ContainerStore::new(64);
        store.append(rec(1, 5), Some(b"hello")).unwrap();
        let err = store.append(rec(2, 5), None).unwrap_err();
        assert_eq!(err.store_mode, PayloadMode::Payload);
        assert_eq!(err.append_mode, PayloadMode::Metadata);
        assert_eq!(store.stored_bytes(), 5, "rejected append left no trace");
        // ...and vice versa.
        let mut store = ContainerStore::new(64);
        store.append(rec(1, 5), None).unwrap();
        let err = store.append(rec(2, 5), Some(b"world")).unwrap_err();
        assert_eq!(err.store_mode, PayloadMode::Metadata);
        assert!(err.to_string().contains("mixed payload modes"));
    }

    #[test]
    fn with_mode_enforces_from_first_append() {
        let mut store = ContainerStore::with_mode(64, PayloadMode::Payload);
        assert_eq!(store.mode(), Some(PayloadMode::Payload));
        assert!(store.append(rec(1, 5), None).is_err());
        assert!(store.append(rec(1, 5), Some(b"hello")).is_ok());
    }

    #[test]
    fn metadata_only_containers_have_no_payload() {
        let mut store = ContainerStore::new(64);
        store.append(rec(1, 5), None).unwrap();
        store.flush();
        let c = store.get(ContainerId(0)).unwrap();
        assert_eq!(c.chunk_payload(0), None);
        assert!(!c.has_payload());
    }

    #[test]
    fn container_ids_sequential() {
        let mut store = ContainerStore::new(16);
        for i in 0..10 {
            store.append(rec(i, 16), None).unwrap();
        }
        store.flush();
        let ids: Vec<u32> = store.iter().map(|c| c.id.0).collect();
        assert_eq!(ids, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn stored_bytes_includes_open() {
        let mut store = ContainerStore::new(100);
        store.append(rec(1, 30), None).unwrap();
        store.append(rec(2, 30), None).unwrap();
        assert_eq!(store.stored_bytes(), 60);
    }

    #[test]
    fn restored_container_matches_sealed_original() {
        let mut store = ContainerStore::new(64);
        store.append(rec(1, 5), Some(b"hello")).unwrap();
        store.append(rec(2, 5), Some(b"world")).unwrap();
        store.flush();
        let orig = store.get(ContainerId(0)).unwrap();
        let rebuilt = Container::from_restored(
            ContainerId(0),
            orig.fingerprints.clone(),
            orig.chunk_sizes().to_vec(),
            Some(b"helloworld".to_vec()),
        );
        assert_eq!(rebuilt.fingerprints, orig.fingerprints);
        assert_eq!(rebuilt.data_bytes, orig.data_bytes);
        assert_eq!(rebuilt.chunk_sizes(), orig.chunk_sizes());
        assert_eq!(rebuilt.chunk_payload(1), orig.chunk_payload(1));
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = ContainerStore::new(0);
    }

    #[test]
    fn remove_leaves_hole_and_ids_stay_monotonic() {
        let mut store = ContainerStore::new(16);
        for i in 0..3 {
            store.append(rec(i, 16), None).unwrap();
        }
        store.flush();
        assert_eq!(store.sealed_count(), 3);
        assert_eq!(store.next_id(), 3);
        let gone = store.remove(ContainerId(1)).unwrap();
        assert_eq!(gone.fingerprints, vec![Fingerprint(1)]);
        assert!(store.get(ContainerId(1)).is_none());
        assert!(store.get(ContainerId(0)).is_some());
        assert_eq!(store.sealed_count(), 2);
        assert_eq!(store.stored_bytes(), 32);
        // The hole is not reused: the next seal takes a fresh id.
        assert!(store.remove(ContainerId(1)).is_none(), "double remove");
        store.append(rec(9, 16), None).unwrap();
        store.flush();
        assert_eq!(store.next_id(), 4);
        assert_eq!(
            store.get(ContainerId(3)).unwrap().fingerprints,
            vec![Fingerprint(9)]
        );
        let ids: Vec<u32> = store.iter().map(|c| c.id.0).collect();
        assert_eq!(ids, vec![0, 2, 3]);
    }
}
