//! Storage and metadata-access statistics (the measurands of Figs. 11/13/14).
//!
//! Both record types are closed under component-wise addition ([`Add`] /
//! [`AddAssign`] / [`Sum`]): the sharded engine merges its per-shard
//! counters into one aggregate record with plain `+`.

use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub};

/// On-disk metadata access totals, in bytes, split into the paper's three
/// categories (§7.4.2):
///
/// * **update** — writing index entries for unique chunks (S2/S3);
/// * **index** — reading the on-disk index to confirm duplicates (S3);
/// * **loading** — prefetching container fingerprint lists into the cache
///   (S4).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MetadataAccess {
    /// Bytes of index updates.
    pub update_bytes: u64,
    /// Bytes of index lookups.
    pub index_bytes: u64,
    /// Bytes of container-fingerprint loading.
    pub loading_bytes: u64,
}

impl MetadataAccess {
    /// Total metadata bytes accessed.
    #[must_use]
    pub fn total_bytes(&self) -> u64 {
        self.update_bytes + self.index_bytes + self.loading_bytes
    }

    /// Fraction contributed by loading access (the paper observes ≥ 74.2%
    /// with a small cache). Returns 0 for an empty record.
    #[must_use]
    pub fn loading_fraction(&self) -> f64 {
        let total = self.total_bytes();
        if total == 0 {
            0.0
        } else {
            self.loading_bytes as f64 / total as f64
        }
    }
}

impl Sub for MetadataAccess {
    type Output = MetadataAccess;

    /// Component-wise difference; used to derive per-backup deltas from
    /// cumulative counters.
    fn sub(self, earlier: MetadataAccess) -> MetadataAccess {
        MetadataAccess {
            update_bytes: self.update_bytes - earlier.update_bytes,
            index_bytes: self.index_bytes - earlier.index_bytes,
            loading_bytes: self.loading_bytes - earlier.loading_bytes,
        }
    }
}

impl Add for MetadataAccess {
    type Output = MetadataAccess;

    /// Component-wise sum; merges per-shard access records.
    fn add(self, other: MetadataAccess) -> MetadataAccess {
        MetadataAccess {
            update_bytes: self.update_bytes + other.update_bytes,
            index_bytes: self.index_bytes + other.index_bytes,
            loading_bytes: self.loading_bytes + other.loading_bytes,
        }
    }
}

impl AddAssign for MetadataAccess {
    fn add_assign(&mut self, other: MetadataAccess) {
        *self = *self + other;
    }
}

impl Sum for MetadataAccess {
    fn sum<I: Iterator<Item = MetadataAccess>>(iter: I) -> Self {
        iter.fold(MetadataAccess::default(), Add::add)
    }
}

/// Deduplication outcome counters for an ingest stream.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Logical chunks ingested (duplicates included).
    pub logical_chunks: u64,
    /// Logical bytes ingested.
    pub logical_bytes: u64,
    /// Unique chunks stored.
    pub unique_chunks: u64,
    /// Unique bytes stored.
    pub unique_bytes: u64,
    /// Duplicates resolved by the fingerprint cache (S1).
    pub dup_cache_hits: u64,
    /// Duplicates resolved by the open-container buffer.
    pub dup_buffer_hits: u64,
    /// Duplicates resolved by the on-disk index (S4).
    pub dup_index_hits: u64,
    /// Bloom-filter false positives (bloom hit, index miss).
    pub bloom_false_positives: u64,
    /// Containers sealed.
    pub containers_sealed: u64,
    /// Logical chunks released by backup deletion (still stored until GC).
    pub deleted_chunks: u64,
    /// Logical bytes released by backup deletion. Deletion is a *logical*
    /// event: the bytes stay in their containers until a [`gc`] pass
    /// physically reclaims them, which is what [`Self::reclaimed_bytes`]
    /// counts — the two grow independently and their gap is the store's
    /// reclaimable debt.
    ///
    /// [`gc`]: crate::engine::DedupEngine::gc
    pub deleted_bytes: u64,
    /// Physical bytes reclaimed by GC (dead chunk bytes dropped with their
    /// containers).
    pub reclaimed_bytes: u64,
    /// Containers dropped by GC.
    pub containers_dropped: u64,
}

impl StoreStats {
    /// Total duplicate chunks detected.
    #[must_use]
    pub fn duplicates(&self) -> u64 {
        self.dup_cache_hits + self.dup_buffer_hits + self.dup_index_hits
    }

    /// Storage saving `1 - unique/logical` over the ingested stream.
    #[must_use]
    pub fn storage_saving(&self) -> f64 {
        if self.logical_bytes == 0 {
            0.0
        } else {
            1.0 - self.unique_bytes as f64 / self.logical_bytes as f64
        }
    }

    /// Deduplication ratio `logical/unique` over the ingested stream.
    #[must_use]
    pub fn dedup_ratio(&self) -> f64 {
        if self.unique_bytes == 0 {
            1.0
        } else {
            self.logical_bytes as f64 / self.unique_bytes as f64
        }
    }

    /// The canonical fixed-order array form (the persistence snapshot's
    /// serialization of the record). Field order is part of the on-disk
    /// format — append-only.
    #[must_use]
    pub fn to_array(&self) -> [u64; 13] {
        [
            self.logical_chunks,
            self.logical_bytes,
            self.unique_chunks,
            self.unique_bytes,
            self.dup_cache_hits,
            self.dup_buffer_hits,
            self.dup_index_hits,
            self.bloom_false_positives,
            self.containers_sealed,
            self.deleted_chunks,
            self.deleted_bytes,
            self.reclaimed_bytes,
            self.containers_dropped,
        ]
    }

    /// Rebuilds a record from its [`Self::to_array`] form.
    #[must_use]
    pub fn from_array(a: [u64; 13]) -> Self {
        StoreStats {
            logical_chunks: a[0],
            logical_bytes: a[1],
            unique_chunks: a[2],
            unique_bytes: a[3],
            dup_cache_hits: a[4],
            dup_buffer_hits: a[5],
            dup_index_hits: a[6],
            bloom_false_positives: a[7],
            containers_sealed: a[8],
            deleted_chunks: a[9],
            deleted_bytes: a[10],
            reclaimed_bytes: a[11],
            containers_dropped: a[12],
        }
    }
}

impl Add for StoreStats {
    type Output = StoreStats;

    /// Component-wise sum; merges per-shard ingest counters.
    fn add(self, other: StoreStats) -> StoreStats {
        StoreStats {
            logical_chunks: self.logical_chunks + other.logical_chunks,
            logical_bytes: self.logical_bytes + other.logical_bytes,
            unique_chunks: self.unique_chunks + other.unique_chunks,
            unique_bytes: self.unique_bytes + other.unique_bytes,
            dup_cache_hits: self.dup_cache_hits + other.dup_cache_hits,
            dup_buffer_hits: self.dup_buffer_hits + other.dup_buffer_hits,
            dup_index_hits: self.dup_index_hits + other.dup_index_hits,
            bloom_false_positives: self.bloom_false_positives + other.bloom_false_positives,
            containers_sealed: self.containers_sealed + other.containers_sealed,
            deleted_chunks: self.deleted_chunks + other.deleted_chunks,
            deleted_bytes: self.deleted_bytes + other.deleted_bytes,
            reclaimed_bytes: self.reclaimed_bytes + other.reclaimed_bytes,
            containers_dropped: self.containers_dropped + other.containers_dropped,
        }
    }
}

impl AddAssign for StoreStats {
    fn add_assign(&mut self, other: StoreStats) {
        *self = *self + other;
    }
}

impl Sum for StoreStats {
    fn sum<I: Iterator<Item = StoreStats>>(iter: I) -> Self {
        iter.fold(StoreStats::default(), Add::add)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_fractions() {
        let m = MetadataAccess {
            update_bytes: 10,
            index_bytes: 20,
            loading_bytes: 70,
        };
        assert_eq!(m.total_bytes(), 100);
        assert!((m.loading_fraction() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn empty_metadata_access() {
        let m = MetadataAccess::default();
        assert_eq!(m.total_bytes(), 0);
        assert_eq!(m.loading_fraction(), 0.0);
    }

    #[test]
    fn delta_via_sub() {
        let earlier = MetadataAccess {
            update_bytes: 5,
            index_bytes: 5,
            loading_bytes: 5,
        };
        let later = MetadataAccess {
            update_bytes: 7,
            index_bytes: 11,
            loading_bytes: 5,
        };
        let d = later - earlier;
        assert_eq!(d.update_bytes, 2);
        assert_eq!(d.index_bytes, 6);
        assert_eq!(d.loading_bytes, 0);
    }

    #[test]
    fn store_stats_derived_metrics() {
        let s = StoreStats {
            logical_chunks: 10,
            logical_bytes: 100,
            unique_chunks: 4,
            unique_bytes: 25,
            dup_cache_hits: 3,
            dup_buffer_hits: 1,
            dup_index_hits: 2,
            ..StoreStats::default()
        };
        assert_eq!(s.duplicates(), 6);
        assert!((s.storage_saving() - 0.75).abs() < 1e-12);
        assert!((s.dedup_ratio() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn store_stats_empty_neutral() {
        let s = StoreStats::default();
        assert_eq!(s.storage_saving(), 0.0);
        assert_eq!(s.dedup_ratio(), 1.0);
    }

    #[test]
    fn array_form_round_trips() {
        let s = StoreStats {
            logical_chunks: 1,
            logical_bytes: 2,
            unique_chunks: 3,
            unique_bytes: 4,
            dup_cache_hits: 5,
            dup_buffer_hits: 6,
            dup_index_hits: 7,
            bloom_false_positives: 8,
            containers_sealed: 9,
            deleted_chunks: 10,
            deleted_bytes: 11,
            reclaimed_bytes: 12,
            containers_dropped: 13,
        };
        assert_eq!(s.to_array(), [1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13]);
        assert_eq!(StoreStats::from_array(s.to_array()), s);
    }

    #[test]
    fn lifecycle_counters_merge_and_grow_independently() {
        // Logical deletion and physical reclaim are separate measurands:
        // deleting a backup moves deleted_* without touching reclaimed_*,
        // and the sharded merge sums each component independently.
        let deleted = StoreStats {
            deleted_chunks: 4,
            deleted_bytes: 400,
            ..StoreStats::default()
        };
        let reclaimed = StoreStats {
            reclaimed_bytes: 150,
            containers_dropped: 2,
            ..StoreStats::default()
        };
        let merged = deleted + reclaimed;
        assert_eq!(merged.deleted_chunks, 4);
        assert_eq!(merged.deleted_bytes, 400);
        assert_eq!(merged.reclaimed_bytes, 150);
        assert_eq!(merged.containers_dropped, 2);
        let mut acc = StoreStats::default();
        acc += deleted;
        acc += reclaimed;
        assert_eq!(acc, merged);
        assert_eq!([deleted, reclaimed].into_iter().sum::<StoreStats>(), merged);
    }

    #[test]
    fn merge_via_add_and_sum() {
        let a = StoreStats {
            logical_chunks: 3,
            unique_chunks: 2,
            dup_cache_hits: 1,
            ..StoreStats::default()
        };
        let b = StoreStats {
            logical_chunks: 5,
            unique_chunks: 1,
            containers_sealed: 2,
            ..StoreStats::default()
        };
        let m = a + b;
        assert_eq!(m.logical_chunks, 8);
        assert_eq!(m.unique_chunks, 3);
        assert_eq!(m.dup_cache_hits, 1);
        assert_eq!(m.containers_sealed, 2);
        let s: StoreStats = [a, b].into_iter().sum();
        assert_eq!(s, m);

        let ma = MetadataAccess {
            update_bytes: 1,
            index_bytes: 2,
            loading_bytes: 3,
        };
        let mut acc = MetadataAccess::default();
        acc += ma;
        acc += ma;
        assert_eq!(acc, ma + ma);
        assert_eq!([ma, ma].into_iter().sum::<MetadataAccess>(), acc);
    }
}
