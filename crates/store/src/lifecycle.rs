//! Storage lifecycle: backup recipes, retention, GC reports and rekey
//! epochs.
//!
//! A *backup* becomes a first-class store object here: committing one
//! writes a **recipe** — the ordered `(fingerprint, size)` stream of the
//! backup — to its own `recipe-*.rcp` file, then commits it through the
//! write-ahead manifest journal (recipe file durable *before* its
//! `Backup` record, mirroring the container/seal ordering). Deleting a
//! backup journals a `BackupDelete` record, releases the recipe's
//! [reference counts](crate::refcount) and removes the file; the chunks
//! themselves stay stored until a GC pass drops their containers.
//!
//! Rekeying is keyed by **epoch**: epoch 0 is the identity (payloads
//! stored as uploaded), and each `rekey` call re-wraps every live
//! container payload under a keystream derived from the new epoch secret,
//! bumping the store epoch once all containers are rewritten. The epoch
//! secrets are never persisted — an epoch-`e` store can only be opened by
//! a caller supplying the epoch-`e` secret, which is exactly the REED
//! revocation property: after the epoch commits, the old key no longer
//! reads anything.

use std::fmt;
use std::fs::File;
use std::io::{BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};

use freqdedup_crypto::ctr::Aes256Ctr;
use freqdedup_crypto::{hmac, kdf};
use freqdedup_trace::{ChunkRecord, Fingerprint};

use crate::fault::{FaultFile, IoPolicyHandle, PersistSite};
use crate::persist::{maybe_sync_dir, CrcSink, CrcSource, FsyncPolicy, PersistError};

const RECIPE_MAGIC: &[u8; 4] = b"FQRC";
const RECIPE_VERSION: u16 = 1;

/// Which committed backups a retention pass should delete.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RetentionPolicy {
    /// Keep the `N` most recently committed backups (by timestamp, ties
    /// broken toward the higher backup id), delete the rest.
    KeepLastN(usize),
    /// Delete backups older than `max_age` time units relative to the
    /// caller-supplied `now` (the store never reads a clock — callers pass
    /// logical or wall time consistently).
    MaxAge(u64),
}

impl RetentionPolicy {
    /// The backup ids the policy would delete, given `(id, timestamp)`
    /// pairs of the committed backups and the caller's `now`. The result
    /// is sorted by id for deterministic deletion order.
    #[must_use]
    pub fn victims(&self, backups: &[(u64, u64)], now: u64) -> Vec<u64> {
        let mut victims: Vec<u64> = match *self {
            RetentionPolicy::KeepLastN(n) => {
                let mut by_recency: Vec<(u64, u64)> = backups.to_vec();
                // Most recent first: timestamp desc, id desc as tiebreak.
                by_recency.sort_unstable_by_key(|&(id, ts)| std::cmp::Reverse((ts, id)));
                by_recency.iter().skip(n).map(|&(id, _)| id).collect()
            }
            RetentionPolicy::MaxAge(max_age) => backups
                .iter()
                .filter(|&&(_, ts)| now.saturating_sub(ts) > max_age)
                .map(|&(id, _)| id)
                .collect(),
        };
        victims.sort_unstable();
        victims
    }
}

/// The ordered chunk stream of one committed backup.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Recipe {
    /// Caller-supplied commit timestamp (logical or wall time).
    pub timestamp: u64,
    /// The backup's logical chunk stream, duplicates included.
    pub chunks: Vec<ChunkRecord>,
}

impl Recipe {
    /// Number of logical chunks in the backup.
    #[must_use]
    pub fn len(&self) -> usize {
        self.chunks.len()
    }

    /// Whether the backup holds no chunks.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.chunks.is_empty()
    }

    /// Logical bytes of the backup (duplicates included).
    #[must_use]
    pub fn logical_bytes(&self) -> u64 {
        self.chunks.iter().map(|c| u64::from(c.size)).sum()
    }
}

/// A lifecycle operation failed.
#[derive(Debug)]
pub enum LifecycleError {
    /// `delete_backup` named an id that is not committed (or was already
    /// deleted).
    UnknownBackup {
        /// The offending backup id.
        id: u64,
    },
    /// `commit_backup` reused the id of a still-committed backup.
    DuplicateBackup {
        /// The offending backup id.
        id: u64,
    },
    /// The underlying persistence operation failed.
    Persist(PersistError),
}

impl fmt::Display for LifecycleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LifecycleError::UnknownBackup { id } => {
                write!(f, "backup {id} is not committed in this store")
            }
            LifecycleError::DuplicateBackup { id } => {
                write!(f, "backup {id} is already committed")
            }
            LifecycleError::Persist(e) => write!(f, "lifecycle persistence failure: {e}"),
        }
    }
}

impl std::error::Error for LifecycleError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LifecycleError::Persist(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PersistError> for LifecycleError {
    fn from(e: PersistError) -> Self {
        LifecycleError::Persist(e)
    }
}

/// What a `delete_backup` call released (logically — nothing is physically
/// reclaimed until GC).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DeleteReport {
    /// Logical chunks released.
    pub chunks_released: u64,
    /// Logical bytes released.
    pub logical_bytes: u64,
}

/// What one `gc` pass did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GcReport {
    /// Sealed containers examined.
    pub containers_scanned: u64,
    /// Containers dropped (victims below the live threshold).
    pub containers_dropped: u64,
    /// Live chunks rewritten out of victims into fresh containers.
    pub moved_chunks: u64,
    /// Bytes of live chunks rewritten.
    pub moved_bytes: u64,
    /// Dead chunk copies dropped with their victims.
    pub dead_chunks: u64,
    /// Bytes physically reclaimed (the dead chunks' bytes).
    pub reclaimed_bytes: u64,
}

impl std::ops::AddAssign for GcReport {
    fn add_assign(&mut self, o: GcReport) {
        self.containers_scanned += o.containers_scanned;
        self.containers_dropped += o.containers_dropped;
        self.moved_chunks += o.moved_chunks;
        self.moved_bytes += o.moved_bytes;
        self.dead_chunks += o.dead_chunks;
        self.reclaimed_bytes += o.reclaimed_bytes;
    }
}

/// What one `rekey` call did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RekeyReport {
    /// The committed key epoch after the call.
    pub epoch: u64,
    /// Live containers rewritten under the new epoch key.
    pub containers_rewritten: u64,
}

// ---------------------------------------------------------------------------
// Recipe files.
// ---------------------------------------------------------------------------

/// The recipe file path of backup `id` under `dir`.
#[must_use]
pub fn recipe_path(dir: &Path, id: u64) -> PathBuf {
    dir.join(format!("recipe-{id:016x}.rcp"))
}

/// Serializes a backup recipe to its file under `dir` (magic + version,
/// backup id, timestamp, chunk count, `(fingerprint, size)` records, CRC),
/// durable before the manifest's `Backup` record commits it.
///
/// # Errors
///
/// Returns [`PersistError::Io`] on write failure (including injected
/// faults at [`PersistSite::RecipeWrite`] / [`PersistSite::RecipeSync`]).
pub fn write_recipe(
    dir: &Path,
    id: u64,
    recipe: &Recipe,
    policy: FsyncPolicy,
    io: &IoPolicyHandle,
) -> Result<(), PersistError> {
    let file = FaultFile::new(
        File::create(recipe_path(dir, id))?,
        io.clone(),
        PersistSite::RecipeWrite,
    );
    let mut w = CrcSink::new(BufWriter::new(file));
    w.write_all(RECIPE_MAGIC)?;
    w.write_u16(RECIPE_VERSION)?;
    w.write_u64(id)?;
    w.write_u64(recipe.timestamp)?;
    w.write_u32(recipe.chunks.len() as u32)?;
    for c in &recipe.chunks {
        w.write_u64(c.fp.value())?;
        w.write_u32(c.size)?;
    }
    let mut buf = w.finish()?;
    buf.flush()?;
    buf.get_ref().maybe_sync(policy, PersistSite::RecipeSync)?;
    io.check_sync(PersistSite::DirSync)?;
    maybe_sync_dir(dir, policy)?;
    Ok(())
}

/// Reads and verifies the recipe file of backup `id` under `dir`.
///
/// # Errors
///
/// * [`PersistError::Torn`] — the file ends mid-record or fails its CRC;
/// * [`PersistError::Io`] — the file is missing or unreadable;
/// * [`PersistError::BadMagic`] / [`PersistError::BadVersion`] /
///   [`PersistError::Corrupt`] — not a recipe file, or its header names a
///   different backup.
pub fn read_recipe(dir: &Path, id: u64) -> Result<Recipe, PersistError> {
    let file = File::open(recipe_path(dir, id))?;
    let mut r = CrcSource::new(BufReader::new(file), "recipe file");
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic, "magic")?;
    if &magic != RECIPE_MAGIC {
        return Err(PersistError::BadMagic {
            file: "recipe file".to_string(),
        });
    }
    let version = r.read_u16("version")?;
    if version != RECIPE_VERSION {
        return Err(PersistError::BadVersion {
            file: "recipe file".to_string(),
            version,
        });
    }
    let file_id = r.read_u64("backup id")?;
    if file_id != id {
        return Err(PersistError::Corrupt(format!(
            "recipe file for backup {id} claims backup id {file_id}"
        )));
    }
    let timestamp = r.read_u64("timestamp")?;
    let count = r.read_u32("chunk count")? as usize;
    let mut chunks = Vec::with_capacity(count.min(1 << 20));
    for _ in 0..count {
        let fp = Fingerprint(r.read_u64("record fingerprint")?);
        let size = r.read_u32("record size")?;
        chunks.push(ChunkRecord { fp, size });
    }
    r.expect_crc()?;
    Ok(Recipe { timestamp, chunks })
}

/// Removes the recipe file of backup `id`, tolerating its absence (the
/// delete already committed in the journal; the file removal is cleanup).
pub(crate) fn remove_recipe(dir: &Path, id: u64) {
    let _ = std::fs::remove_file(recipe_path(dir, id));
}

/// The backup ids of every `recipe-*.rcp` file under `dir` (recovery's
/// stale-file sweep).
pub(crate) fn scan_recipe_ids(dir: &Path) -> Result<Vec<u64>, PersistError> {
    let mut ids = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let name = entry?.file_name();
        let name = name.to_string_lossy();
        if let Some(hex) = name
            .strip_prefix("recipe-")
            .and_then(|s| s.strip_suffix(".rcp"))
        {
            if let Ok(id) = u64::from_str_radix(hex, 16) {
                ids.push(id);
            }
        }
    }
    ids.sort_unstable();
    Ok(ids)
}

// ---------------------------------------------------------------------------
// Epoch keys.
// ---------------------------------------------------------------------------

/// Derives the 256-bit payload-wrapping key of `epoch` from its secret.
#[must_use]
pub fn epoch_key(secret: &[u8], epoch: u64) -> [u8; 32] {
    kdf::derive_key(b"freqdedup-store-epoch", secret, &epoch.to_le_bytes())
}

/// The key-check value stored in epoch-`e` container headers: lets
/// recovery refuse a wrong (e.g. revoked) epoch secret with a typed error
/// instead of silently unwrapping garbage.
#[must_use]
pub fn key_check_value(key: &[u8; 32]) -> u64 {
    hmac::hmac_u64(key, b"freqdedup-epoch-kcv")
}

/// XORs the epoch keystream for chunk `fp` into `buf` in place (AES-256
/// CTR keyed by the epoch key, IV bound to the fingerprint). Applying it
/// twice is the identity, so the same routine wraps and unwraps.
pub fn apply_epoch_keystream(key: &[u8; 32], fp: Fingerprint, buf: &mut [u8]) {
    let mut iv = [0u8; 16];
    iv[..8].copy_from_slice(&fp.to_bytes());
    Aes256Ctr::new(key, &iv).apply_keystream(buf);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("freqdedup-rcp-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn recipe(ts: u64, fps: &[u64]) -> Recipe {
        Recipe {
            timestamp: ts,
            chunks: fps.iter().map(|&v| ChunkRecord::new(v, 16)).collect(),
        }
    }

    #[test]
    fn recipe_round_trips() {
        let dir = tmp_dir("rt");
        let r = recipe(42, &[1, 2, 2, 3]);
        write_recipe(&dir, 7, &r, FsyncPolicy::Never, &IoPolicyHandle::none()).unwrap();
        let back = read_recipe(&dir, 7).unwrap();
        assert_eq!(back, r);
        assert_eq!(back.logical_bytes(), 64);
        assert_eq!(scan_recipe_ids(&dir).unwrap(), vec![7]);
        remove_recipe(&dir, 7);
        assert!(matches!(read_recipe(&dir, 7), Err(PersistError::Io(_))));
        remove_recipe(&dir, 7); // tolerated
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncated_recipe_reports_torn() {
        let dir = tmp_dir("torn");
        let r = recipe(1, &[10, 20, 30]);
        write_recipe(&dir, 3, &r, FsyncPolicy::Never, &IoPolicyHandle::none()).unwrap();
        let path = recipe_path(&dir, 3);
        let full = std::fs::read(&path).unwrap();
        for cut in [full.len() - 1, full.len() - 5, full.len() / 2, 3] {
            std::fs::write(&path, &full[..cut]).unwrap();
            assert!(
                matches!(read_recipe(&dir, 3), Err(PersistError::Torn { .. })),
                "cut at {cut}"
            );
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn recipe_id_mismatch_reports_corrupt() {
        let dir = tmp_dir("wrong-id");
        write_recipe(
            &dir,
            1,
            &recipe(0, &[5]),
            FsyncPolicy::Never,
            &IoPolicyHandle::none(),
        )
        .unwrap();
        std::fs::rename(recipe_path(&dir, 1), recipe_path(&dir, 2)).unwrap();
        assert!(matches!(
            read_recipe(&dir, 2),
            Err(PersistError::Corrupt(_))
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn keep_last_n_by_recency() {
        let backups = [(1, 100), (2, 300), (3, 200), (4, 300)];
        let p = RetentionPolicy::KeepLastN(2);
        // Most recent two are ids 4 and 2 (ts 300, id desc tiebreak).
        assert_eq!(p.victims(&backups, 999), vec![1, 3]);
        assert_eq!(
            RetentionPolicy::KeepLastN(0).victims(&backups, 0),
            vec![1, 2, 3, 4]
        );
        assert!(RetentionPolicy::KeepLastN(10)
            .victims(&backups, 0)
            .is_empty());
    }

    #[test]
    fn max_age_by_caller_clock() {
        let backups = [(1, 100), (2, 300), (3, 200)];
        let p = RetentionPolicy::MaxAge(150);
        assert_eq!(p.victims(&backups, 350), vec![1]);
        assert_eq!(p.victims(&backups, 420), vec![1, 3]);
        assert_eq!(p.victims(&backups, 500), vec![1, 2, 3]);
        assert!(p.victims(&backups, 100).is_empty(), "nothing old yet");
    }

    #[test]
    fn keystream_is_an_involution_and_epoch_separated() {
        let k1 = epoch_key(b"secret-one", 1);
        let k2 = epoch_key(b"secret-one", 2);
        let fp = Fingerprint(0xDEAD_BEEF);
        let plain = b"payload bytes of some chunk".to_vec();
        let mut buf = plain.clone();
        apply_epoch_keystream(&k1, fp, &mut buf);
        assert_ne!(buf, plain);
        let wrapped_e1 = buf.clone();
        apply_epoch_keystream(&k1, fp, &mut buf);
        assert_eq!(buf, plain, "wrap twice = identity");
        apply_epoch_keystream(&k2, fp, &mut buf);
        assert_ne!(buf, wrapped_e1, "epochs use distinct keystreams");
        apply_epoch_keystream(&k2, fp, &mut buf);
        // Different fingerprints get different streams under one key.
        let mut a = vec![0u8; 16];
        let mut b = vec![0u8; 16];
        apply_epoch_keystream(&k1, Fingerprint(1), &mut a);
        apply_epoch_keystream(&k1, Fingerprint(2), &mut b);
        assert_ne!(a, b);
    }

    #[test]
    fn key_check_value_detects_wrong_secret() {
        let right = epoch_key(b"new-secret", 3);
        let wrong = epoch_key(b"old-secret", 3);
        assert_ne!(key_check_value(&right), key_check_value(&wrong));
        assert_eq!(
            key_check_value(&right),
            key_check_value(&epoch_key(b"new-secret", 3))
        );
    }
}
