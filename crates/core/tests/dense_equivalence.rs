//! Equivalence of the dense-id/CSR attack pipeline and the
//! fingerprint-keyed reference path.
//!
//! The dense layer (`freqdedup_core::dense`) re-implements `COUNT`,
//! `FREQ-ANALYSIS` and the locality crawl over interned `u32` ids and CSR
//! co-occurrence rows. Tie-break order — (count desc, first-seen order asc,
//! fingerprint asc) — must survive interning **bit-for-bit**, because §4.1's
//! tie sensitivity means a single reordered tie can swing the inference
//! rate by an order of magnitude. These property tests pin the two paths
//! together on randomized synthetic backups, across both `TiePolicy`
//! variants, plain and size-classified analysis, and both attack modes.

use std::collections::HashMap;

use freqdedup_core::attacks::basic::BasicAttack;
use freqdedup_core::attacks::locality::{LocalityAttack, LocalityParams};
use freqdedup_core::counting::{ChunkStats, TiePolicy};
use freqdedup_core::dense::DenseStats;
use freqdedup_core::freq_analysis::{freq_analysis, rank, rank_dense};
use freqdedup_core::metrics::Inference;
use freqdedup_mle::trace_enc::DeterministicTraceEncryptor;
use freqdedup_trace::{Backup, ChunkRecord, Fingerprint};
use proptest::prelude::*;

/// Builds a backup whose chunk sizes vary with the fingerprint, so the
/// size-classified (Algorithm 3) branch sees several block classes.
fn backup(fps: &[u64]) -> Backup {
    Backup::from_chunks(
        "t",
        fps.iter()
            .map(|&f| ChunkRecord::new(f, 64 + ((f % 5) * 16) as u32))
            .collect(),
    )
}

/// A small fingerprint domain forces duplicates, ties and shared
/// neighbourhoods — the tie-sensitive regime.
fn fp_stream() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(1u64..60, 0..300)
}

fn sorted_pairs(inf: &Inference) -> Vec<(Fingerprint, Fingerprint)> {
    let mut v: Vec<_> = inf.iter().collect();
    v.sort_unstable();
    v
}

proptest! {
    /// `COUNT` equivalence: exporting the dense statistics back to the
    /// fingerprint-keyed representation reproduces `ChunkStats` exactly —
    /// frequencies, both neighbour tables (counts *and* tie-break orders),
    /// and sizes — under both tie policies.
    #[test]
    fn count_tables_identical(fps in fp_stream()) {
        let b = backup(&fps);
        for policy in [TiePolicy::StreamOrder, TiePolicy::KeyOrder] {
            let legacy = ChunkStats::full_with_policy(&b, policy);
            let dense = DenseStats::full_with_policy(&b, policy).to_chunk_stats();
            prop_assert_eq!(&dense.freq, &legacy.freq);
            prop_assert_eq!(&dense.left, &legacy.left);
            prop_assert_eq!(&dense.right, &legacy.right);
            prop_assert_eq!(&dense.sizes, &legacy.sizes);
        }
    }

    /// Global-ranking equivalence: the dense canonical ranking, mapped back
    /// to fingerprints, equals the fingerprint-keyed ranking.
    #[test]
    fn global_ranking_identical(fps in fp_stream()) {
        let b = backup(&fps);
        let legacy = ChunkStats::frequencies_only(&b);
        let dense = DenseStats::frequencies_only(&b);
        let legacy_order: Vec<u64> = rank(&legacy.freq).into_iter().map(|(f, _)| f.0).collect();
        let fps_tab = dense.interner.fingerprints();
        let dense_order: Vec<u64> = rank_dense(&dense.global_rows(), fps_tab)
            .into_iter()
            .map(|e| fps_tab[e.id as usize].0)
            .collect();
        prop_assert_eq!(legacy_order, dense_order);
    }

    /// The basic attack (dense path) equals raw fingerprint-keyed
    /// frequency analysis at full depth.
    #[test]
    fn basic_attack_identical(aux_fps in fp_stream(), tgt_fps in fp_stream()) {
        let aux = backup(&aux_fps);
        let target = backup(&tgt_fps);
        let dense = BasicAttack::new().run(&target, &aux);
        let fc = ChunkStats::frequencies_only(&target);
        let fm = ChunkStats::frequencies_only(&aux);
        let limit = fc.freq.len().min(fm.freq.len());
        let reference: Inference = freq_analysis(&fc.freq, &fm.freq, limit).into_iter().collect();
        prop_assert_eq!(sorted_pairs(&dense), sorted_pairs(&reference));
    }

    /// Ciphertext-only locality attack: identical inference sets across
    /// both tie policies and both analysis flavours (plain and
    /// size-classified), on an encrypted random stream with a related aux.
    #[test]
    fn locality_ciphertext_only_identical(
        fps in fp_stream(),
        u in 1usize..4,
        v in 1usize..8,
    ) {
        let plain = backup(&fps);
        let observed = DeterministicTraceEncryptor::new(b"eq").encrypt_backup(&plain);
        for policy in [TiePolicy::StreamOrder, TiePolicy::KeyOrder] {
            for size_aware in [false, true] {
                let params = LocalityParams::new(u, v, 100_000)
                    .tie_policy(policy)
                    .size_aware(size_aware);
                let attack = LocalityAttack::new(params);
                let dense = attack.run_ciphertext_only(&observed.backup, &plain);
                let reference = attack.run_ciphertext_only_reference(&observed.backup, &plain);
                prop_assert_eq!(
                    sorted_pairs(&dense),
                    sorted_pairs(&reference),
                    "policy {:?} size_aware {}",
                    policy,
                    size_aware
                );
            }
        }
    }

    /// Known-plaintext mode: leaked seeds (including pairs absent from one
    /// side, which both paths must drop) expand to identical inference
    /// sets. Also exercises the `w` queue bound.
    #[test]
    fn locality_known_plaintext_identical(
        fps in fp_stream(),
        leak_every in 1usize..10,
        w in 0usize..50,
    ) {
        let plain = backup(&fps);
        let observed = DeterministicTraceEncryptor::new(b"eq").encrypt_backup(&plain);
        let mut leaked: Vec<(Fingerprint, Fingerprint)> = observed
            .backup
            .chunks
            .iter()
            .zip(&plain.chunks)
            .step_by(leak_every)
            .map(|(c, m)| (c.fp, m.fp))
            .collect();
        // A foreign pair neither side knows: must be filtered by both paths.
        leaked.push((Fingerprint(u64::MAX), Fingerprint(u64::MAX - 1)));
        let attack = LocalityAttack::new(LocalityParams::new(1, 5, w));
        let dense = attack.run_known_plaintext(&observed.backup, &plain, &leaked);
        let reference =
            attack.run_known_plaintext_reference(&observed.backup, &plain, &leaked);
        prop_assert_eq!(sorted_pairs(&dense), sorted_pairs(&reference));
    }

    /// The inferred *mapping* (not just the pair set) matches: per
    /// ciphertext fingerprint, both paths choose the same plaintext.
    #[test]
    fn inferred_mapping_identical(fps in fp_stream()) {
        let plain = backup(&fps);
        let observed = DeterministicTraceEncryptor::new(b"eq").encrypt_backup(&plain);
        let attack = LocalityAttack::new(LocalityParams::new(2, 3, 1000));
        let dense = attack.run_ciphertext_only(&observed.backup, &plain);
        let reference = attack.run_ciphertext_only_reference(&observed.backup, &plain);
        let dm: HashMap<_, _> = dense.iter().collect();
        let rm: HashMap<_, _> = reference.iter().collect();
        prop_assert_eq!(dm, rm);
    }
}
