//! Determinism of the sharded parallel execution layer.
//!
//! The parallel layer (`freqdedup_core::par` + the `_par` constructors and
//! the `threads` attack knob) promises output **bit-identical** to the
//! sequential path at any thread count: parallel COUNT must reproduce the
//! frequency array and both CSR neighbour tables exactly (shard boundaries
//! must not perturb tie-break orders), and the attacks running on parallel
//! COUNT must produce the same inference sets — across both [`TiePolicy`]
//! variants, both analysis flavours (plain and size-classified), and both
//! attack modes (ciphertext-only and known-plaintext). These property
//! tests pin that promise on randomized tie-heavy backups for
//! `threads ∈ {1, 2, 8}` (1 = the sequential fast path itself, 2 and 8 =
//! fewer/more shards than typical row counts per shard, exercising both
//! near-empty and multi-run shard aggregations).

use freqdedup_core::attacks::advanced::AdvancedAttack;
use freqdedup_core::attacks::basic::BasicAttack;
use freqdedup_core::attacks::locality::{LocalityAttack, LocalityParams};
use freqdedup_core::counting::TiePolicy;
use freqdedup_core::dense::DenseStats;
use freqdedup_core::metrics::Inference;
use freqdedup_core::par::ParConfig;
use freqdedup_mle::trace_enc::DeterministicTraceEncryptor;
use freqdedup_trace::{Backup, ChunkRecord, Fingerprint};
use proptest::prelude::*;

const THREADS: [usize; 3] = [1, 2, 8];

/// Builds a backup whose chunk sizes vary with the fingerprint, so the
/// size-classified (Algorithm 3) branch sees several block classes.
fn backup(fps: &[u64]) -> Backup {
    Backup::from_chunks(
        "t",
        fps.iter()
            .map(|&f| ChunkRecord::new(f, 64 + ((f % 5) * 16) as u32))
            .collect(),
    )
}

/// A small fingerprint domain forces duplicates, ties and shared
/// neighbourhoods — the regime where a single perturbed tie-break order
/// would swing the inference set.
fn fp_stream() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(1u64..60, 0..300)
}

fn sorted_pairs(inf: &Inference) -> Vec<(Fingerprint, Fingerprint)> {
    let mut v: Vec<_> = inf.iter().collect();
    v.sort_unstable();
    v
}

proptest! {
    /// Parallel `COUNT` (frequencies + both CSR tables + interner) equals
    /// the sequential dense structures field-for-field at every thread
    /// count, under both tie policies.
    #[test]
    fn count_and_csr_bit_identical(fps in fp_stream()) {
        let b = backup(&fps);
        for policy in [TiePolicy::StreamOrder, TiePolicy::KeyOrder] {
            let seq = DenseStats::full_with_policy(&b, policy);
            for t in THREADS {
                let par = DenseStats::full_with_policy_par(&b, policy, ParConfig::with_threads(t));
                prop_assert_eq!(&par, &seq, "threads {} policy {:?}", t, policy);
            }
        }
    }

    /// Parallel frequency-only counting equals the sequential pass.
    #[test]
    fn frequencies_only_bit_identical(fps in fp_stream()) {
        let b = backup(&fps);
        let seq = DenseStats::frequencies_only(&b);
        for t in THREADS {
            let par = DenseStats::frequencies_only_par(&b, ParConfig::with_threads(t));
            prop_assert_eq!(&par, &seq, "threads {}", t);
        }
    }

    /// The basic attack on parallel counting infers the same pair set.
    #[test]
    fn basic_attack_thread_invariant(aux_fps in fp_stream(), tgt_fps in fp_stream()) {
        let aux = backup(&aux_fps);
        let target = backup(&tgt_fps);
        let seq = BasicAttack::new().run(&target, &aux);
        for t in THREADS {
            let par = BasicAttack::new().run_par(&target, &aux, ParConfig::with_threads(t));
            prop_assert_eq!(sorted_pairs(&par), sorted_pairs(&seq), "threads {}", t);
        }
    }

    /// Ciphertext-only locality attack: identical inference sets at every
    /// thread count, across both tie policies and both analysis flavours
    /// (plain locality and the size-classified advanced attack).
    #[test]
    fn locality_ciphertext_only_thread_invariant(
        fps in fp_stream(),
        u in 1usize..4,
        v in 1usize..8,
    ) {
        let plain = backup(&fps);
        let observed = DeterministicTraceEncryptor::new(b"par").encrypt_backup(&plain);
        for policy in [TiePolicy::StreamOrder, TiePolicy::KeyOrder] {
            let base = LocalityParams::new(u, v, 100_000).tie_policy(policy);

            let seq = LocalityAttack::new(base.clone())
                .run_ciphertext_only(&observed.backup, &plain);
            let seq_adv = AdvancedAttack::new(base.clone())
                .run_ciphertext_only(&observed.backup, &plain);
            for t in THREADS {
                let par = LocalityAttack::new(base.clone().threads(t))
                    .run_ciphertext_only(&observed.backup, &plain);
                prop_assert_eq!(
                    sorted_pairs(&par),
                    sorted_pairs(&seq),
                    "locality threads {} policy {:?}",
                    t,
                    policy
                );
                let par_adv = AdvancedAttack::new(base.clone().threads(t))
                    .run_ciphertext_only(&observed.backup, &plain);
                prop_assert_eq!(
                    sorted_pairs(&par_adv),
                    sorted_pairs(&seq_adv),
                    "advanced threads {} policy {:?}",
                    t,
                    policy
                );
            }
        }
    }

    /// Known-plaintext mode: leaked seeds expand to identical inference
    /// sets at every thread count (also exercises the `w` queue bound).
    #[test]
    fn locality_known_plaintext_thread_invariant(
        fps in fp_stream(),
        leak_every in 1usize..10,
        w in 0usize..50,
    ) {
        let plain = backup(&fps);
        let observed = DeterministicTraceEncryptor::new(b"par").encrypt_backup(&plain);
        let leaked: Vec<(Fingerprint, Fingerprint)> = observed
            .backup
            .chunks
            .iter()
            .zip(&plain.chunks)
            .step_by(leak_every)
            .map(|(c, m)| (c.fp, m.fp))
            .collect();
        let base = LocalityParams::new(1, 5, w);
        let seq = LocalityAttack::new(base.clone())
            .run_known_plaintext(&observed.backup, &plain, &leaked);
        for t in THREADS {
            let par = LocalityAttack::new(base.clone().threads(t))
                .run_known_plaintext(&observed.backup, &plain, &leaked);
            prop_assert_eq!(sorted_pairs(&par), sorted_pairs(&seq), "threads {}", t);
        }
    }

    /// Parallel COUNT also agrees with the fingerprint-keyed *reference*
    /// attack path — the transitive closure of the dense-equivalence and
    /// thread-invariance guarantees, checked directly.
    #[test]
    fn parallel_attack_matches_reference_path(fps in fp_stream()) {
        let plain = backup(&fps);
        let observed = DeterministicTraceEncryptor::new(b"par").encrypt_backup(&plain);
        let params = LocalityParams::new(2, 3, 1000);
        let reference = LocalityAttack::new(params.clone())
            .run_ciphertext_only_reference(&observed.backup, &plain);
        let par = LocalityAttack::new(params.threads(8))
            .run_ciphertext_only(&observed.backup, &plain);
        prop_assert_eq!(sorted_pairs(&par), sorted_pairs(&reference));
    }

    /// Batch-parallel MLE trace encryption reproduces the sequential
    /// ciphertext stream and ground truth at every thread count.
    #[test]
    fn parallel_encryption_thread_invariant(fps in fp_stream()) {
        let plain = backup(&fps);
        let enc = DeterministicTraceEncryptor::new(b"par");
        let seq = enc.encrypt_backup(&plain);
        for t in THREADS {
            let par = enc.encrypt_backup_par(&plain, ParConfig::with_threads(t));
            prop_assert_eq!(&par.backup.chunks, &seq.backup.chunks, "threads {}", t);
            let mut pt: Vec<_> = par.truth.iter().collect();
            let mut st: Vec<_> = seq.truth.iter().collect();
            pt.sort_unstable();
            st.sort_unstable();
            prop_assert_eq!(pt, st, "threads {}", t);
        }
    }
}

/// The paper's worked example (§4.2) survives every thread count — a
/// deterministic anchor alongside the property tests.
#[test]
fn paper_example_thread_invariant() {
    let aux = backup(&[1, 2, 1, 2, 3, 4, 2, 3, 4]);
    let cipher = backup(&[101, 102, 105, 102, 101, 102, 103, 104, 102, 103, 104, 104]);
    let seq =
        LocalityAttack::new(LocalityParams::new(1, 1, 1000)).run_ciphertext_only(&cipher, &aux);
    for t in [2usize, 8, 64] {
        let par = LocalityAttack::new(LocalityParams::new(1, 1, 1000).threads(t))
            .run_ciphertext_only(&cipher, &aux);
        assert_eq!(sorted_pairs(&par), sorted_pairs(&seq), "threads {t}");
        for i in 1..=4u64 {
            assert_eq!(par.plain_of(Fingerprint(100 + i)), Some(Fingerprint(i)));
        }
    }
}
