//! Extensions beyond the paper's core algorithms.
//!
//! * [`lp_opt`] — the ℓp-optimization inference attack (Naveed et al.,
//!   CCS 2015) that the paper discusses in §3.4 as an alternative to
//!   frequency analysis, implemented via an exact minimum-cost assignment.
//!   Included for the ablation benchmark comparing its severity with
//!   frequency analysis at small scale.

pub mod lp_opt;
