//! The ℓp-optimization attack (§3.4): match ciphertext and plaintext chunks
//! by minimizing the ℓp distance between their frequency vectors, solved
//! exactly with the Hungarian algorithm.
//!
//! Naveed et al. proposed this combinatorial-optimization alternative to
//! frequency analysis; Lacharité & Paterson later showed frequency analysis
//! is optimal for p ≥ 1 in the maximum-likelihood sense, and the paper cites
//! both to justify focusing on frequency analysis. This module lets the
//! benches verify that equivalence empirically: on distinct frequencies the
//! two attacks return identical matchings (the assignment problem is then
//! solved by sorting), and the O(n³) cost of the Hungarian algorithm shows
//! why frequency analysis is also the *practical* choice.

use freqdedup_trace::Backup;

use crate::counting::ChunkStats;
use crate::freq_analysis::rank;
use crate::metrics::Inference;

/// Solves the minimum-cost assignment problem for an `n × m` cost matrix
/// (`n ≤ m`), returning for every row the column assigned to it.
///
/// Implementation: the O(n²m) potential-based Hungarian algorithm
/// (Jonker-Volgenant style shortest augmenting paths).
///
/// # Panics
///
/// Panics if the matrix is ragged or has more rows than columns.
#[must_use]
pub fn min_cost_assignment(cost: &[Vec<f64>]) -> Vec<usize> {
    let n = cost.len();
    if n == 0 {
        return Vec::new();
    }
    let m = cost[0].len();
    assert!(
        cost.iter().all(|row| row.len() == m),
        "cost matrix must be rectangular"
    );
    assert!(n <= m, "assignment requires rows <= columns");

    // 1-indexed potentials and matching, per the classic formulation.
    let mut u = vec![0.0f64; n + 1];
    let mut v = vec![0.0f64; m + 1];
    let mut matched_row = vec![0usize; m + 1]; // column j -> row
    let mut way = vec![0usize; m + 1];

    for i in 1..=n {
        matched_row[0] = i;
        let mut j0 = 0usize;
        let mut minv = vec![f64::INFINITY; m + 1];
        let mut used = vec![false; m + 1];
        loop {
            used[j0] = true;
            let i0 = matched_row[j0];
            let mut delta = f64::INFINITY;
            let mut j1 = 0usize;
            for j in 1..=m {
                if used[j] {
                    continue;
                }
                let cur = cost[i0 - 1][j - 1] - u[i0] - v[j];
                if cur < minv[j] {
                    minv[j] = cur;
                    way[j] = j0;
                }
                if minv[j] < delta {
                    delta = minv[j];
                    j1 = j;
                }
            }
            for j in 0..=m {
                if used[j] {
                    u[matched_row[j]] += delta;
                    v[j] -= delta;
                } else {
                    minv[j] -= delta;
                }
            }
            j0 = j1;
            if matched_row[j0] == 0 {
                break;
            }
        }
        loop {
            let j1 = way[j0];
            matched_row[j0] = matched_row[j1];
            j0 = j1;
            if j0 == 0 {
                break;
            }
        }
    }

    let mut assignment = vec![usize::MAX; n];
    for (j, &row) in matched_row.iter().enumerate().take(m + 1).skip(1) {
        if row != 0 {
            assignment[row - 1] = j - 1;
        }
    }
    assignment
}

/// Runs the ℓp-optimization attack over the `top_n` most frequent chunks of
/// each side: builds the cost matrix `|f_C(i) − f_M(j)|^p` and solves the
/// assignment exactly.
///
/// # Panics
///
/// Panics if `p <= 0`.
#[must_use]
pub fn lp_optimization_attack(
    cipher: &Backup,
    plain_aux: &Backup,
    top_n: usize,
    p: f64,
) -> Inference {
    assert!(p > 0.0, "p must be positive");
    let fc = ChunkStats::frequencies_only(cipher);
    let fm = ChunkStats::frequencies_only(plain_aux);
    let mut rc = rank(&fc.freq);
    let mut rm = rank(&fm.freq);
    let n = top_n.min(rc.len()).min(rm.len());
    rc.truncate(n);
    rm.truncate(n);
    if n == 0 {
        return Inference::new();
    }
    let cost: Vec<Vec<f64>> = rc
        .iter()
        .map(|&(_, fc_i)| {
            rm.iter()
                .map(|&(_, fm_j)| ((fc_i.count as f64) - (fm_j.count as f64)).abs().powf(p))
                .collect()
        })
        .collect();
    let assignment = min_cost_assignment(&cost);
    rc.iter()
        .zip(assignment)
        .map(|(&(c, _), j)| (c, rm[j].0))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attacks::basic::BasicAttack;
    use freqdedup_mle::trace_enc::DeterministicTraceEncryptor;
    use freqdedup_trace::ChunkRecord;

    fn backup(fps: &[u64]) -> Backup {
        Backup::from_chunks("t", fps.iter().map(|&f| ChunkRecord::new(f, 8)).collect())
    }

    #[test]
    fn assignment_identity_matrix() {
        // Diagonal dominance: identity assignment is optimal.
        let cost = vec![
            vec![0.0, 9.0, 9.0],
            vec![9.0, 0.0, 9.0],
            vec![9.0, 9.0, 0.0],
        ];
        assert_eq!(min_cost_assignment(&cost), vec![0, 1, 2]);
    }

    #[test]
    fn assignment_antidiagonal() {
        let cost = vec![
            vec![9.0, 9.0, 0.0],
            vec![9.0, 0.0, 9.0],
            vec![0.0, 9.0, 9.0],
        ];
        assert_eq!(min_cost_assignment(&cost), vec![2, 1, 0]);
    }

    #[test]
    fn assignment_classic_example() {
        // Known optimum 5 + 3 + 2 = 10 is better than greedy.
        let cost = vec![
            vec![4.0, 1.0, 3.0],
            vec![2.0, 0.0, 5.0],
            vec![3.0, 2.0, 2.0],
        ];
        let a = min_cost_assignment(&cost);
        let total: f64 = a.iter().enumerate().map(|(i, &j)| cost[i][j]).sum();
        assert!((total - 5.0).abs() < 1e-9, "total {total}");
        // All columns distinct.
        let mut cols = a.clone();
        cols.sort_unstable();
        cols.dedup();
        assert_eq!(cols.len(), 3);
    }

    #[test]
    fn assignment_rectangular() {
        let cost = vec![vec![5.0, 1.0, 7.0], vec![2.0, 9.0, 3.0]];
        let a = min_cost_assignment(&cost);
        let total: f64 = a.iter().enumerate().map(|(i, &j)| cost[i][j]).sum();
        assert!((total - 3.0).abs() < 1e-9);
    }

    #[test]
    fn assignment_empty() {
        assert!(min_cost_assignment(&[]).is_empty());
    }

    #[test]
    #[should_panic(expected = "rows <= columns")]
    fn assignment_rejects_tall_matrix() {
        let _ = min_cost_assignment(&[vec![1.0], vec![2.0]]);
    }

    #[test]
    fn matches_basic_attack_on_distinct_frequencies() {
        // Lacharité–Paterson equivalence: with strictly distinct
        // frequencies, ℓp-optimization and frequency analysis coincide.
        let fps: Vec<u64> = (1..=10u64).flat_map(|i| vec![i; i as usize]).collect();
        let plain = backup(&fps);
        let enc = DeterministicTraceEncryptor::new(b"s");
        let observed = enc.encrypt_backup(&plain);
        let lp = lp_optimization_attack(&observed.backup, &plain, 10, 1.0);
        let basic = BasicAttack::new().run(&observed.backup, &plain);
        for (c, m) in lp.iter() {
            assert_eq!(basic.plain_of(c), Some(m));
        }
        assert_eq!(lp.len(), basic.len());
    }

    #[test]
    fn top_n_limits_matrix() {
        let plain = backup(&(0..100u64).collect::<Vec<_>>());
        let enc = DeterministicTraceEncryptor::new(b"s");
        let observed = enc.encrypt_backup(&plain);
        let lp = lp_optimization_attack(&observed.backup, &plain, 7, 2.0);
        assert_eq!(lp.len(), 7);
    }

    #[test]
    #[should_panic(expected = "p must be positive")]
    fn p_validated() {
        let _ = lp_optimization_attack(&backup(&[1]), &backup(&[1]), 1, 0.0);
    }
}
