//! Dense chunk-ID interning and CSR co-occurrence tables — the data layer
//! the attack hot path runs on.
//!
//! The fingerprint-keyed [`ChunkStats`] tables of [`crate::counting`] are a
//! faithful model of the paper's LevelDB layout, but a poor fit for the
//! `COUNT` + crawl hot path at scale: every unique chunk owns two
//! heap-allocated `HashMap`s (left and right neighbours), every probe pays
//! SipHash over a 64-bit key, and the crawl's memory accesses are scattered
//! across millions of tiny maps. This module replaces that layout with
//! three flat structures:
//!
//! * [`ChunkInterner`] — one pass over the backup maps each fingerprint to
//!   a contiguous `u32` id (first-seen order), backed by the vendored
//!   FxHash hasher. Fingerprints are outputs of a cryptographic hash, so
//!   the fast multiply-rotate mix loses nothing.
//! * [`CooccurrenceCsr`] — the left/right neighbour tables as CSR
//!   (compressed sparse row) arrays: all `(chunk, neighbour)` adjacencies
//!   are collected as packed `u64` keys, sorted **once**, and run-length
//!   aggregated into per-chunk rows of [`DenseEntry`]. Zero per-chunk maps;
//!   one sort replaces millions of hash probes; each crawl step reads a
//!   contiguous row.
//! * [`DenseStats`] — the dense analogue of [`ChunkStats`]: a global
//!   frequency array indexed by id plus the two CSR tables.
//!
//! **Tie-break equivalence.** The canonical ranking order — higher count,
//! then earlier first-seen stream position, then smaller fingerprint — is
//! preserved bit-for-bit. Counts and orders are aggregated from exactly the
//! same `(position, adjacency)` events the hash-map path observes (the
//! sort key includes the position, so a run's first element carries the
//! minimum, i.e. first-seen, position), and the final fingerprint tie-break
//! resolves through the interner's id→fingerprint table rather than the id
//! itself, so interning cannot reorder ties. The property tests in
//! `tests/dense_equivalence.rs` verify identity against the fingerprint
//! -keyed path on randomized backups under both [`TiePolicy`] variants.

use std::collections::HashMap;
use std::ops::Range;

use freqdedup_trace::{Backup, Fingerprint};
use rustc_hash::FxHashMap;

use crate::counting::{ChunkStats, FreqEntry, TiePolicy};
use crate::par::{self, ParConfig};

/// A dense chunk id: index into the interner's fingerprint/size tables.
pub type ChunkId = u32;

/// Maps 64-bit fingerprints to contiguous `u32` ids in first-seen order.
///
/// Also records each unique chunk's observed size (first observation wins;
/// sizes are deterministic per content, so every observation is equal).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ChunkInterner {
    map: FxHashMap<Fingerprint, ChunkId>,
    fps: Vec<Fingerprint>,
    sizes: Vec<u32>,
}

impl ChunkInterner {
    /// Creates an empty interner.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `fp`, returning its dense id (allocating the next id on
    /// first sight).
    ///
    /// # Panics
    ///
    /// Panics if more than `u32::MAX` unique chunks are interned.
    pub fn intern(&mut self, fp: Fingerprint, size: u32) -> ChunkId {
        if let Some(&id) = self.map.get(&fp) {
            return id;
        }
        let id = u32::try_from(self.fps.len()).expect("more than u32::MAX unique chunks");
        self.map.insert(fp, id);
        self.fps.push(fp);
        self.sizes.push(size);
        id
    }

    /// The id of `fp`, if it has been interned.
    #[must_use]
    pub fn get(&self, fp: Fingerprint) -> Option<ChunkId> {
        self.map.get(&fp).copied()
    }

    /// Number of unique chunks interned.
    #[must_use]
    pub fn len(&self) -> usize {
        self.fps.len()
    }

    /// Whether nothing has been interned.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.fps.is_empty()
    }

    /// The fingerprint of a dense id.
    #[must_use]
    pub fn fingerprint(&self, id: ChunkId) -> Fingerprint {
        self.fps[id as usize]
    }

    /// The observed size in bytes of a dense id.
    #[must_use]
    pub fn size(&self, id: ChunkId) -> u32 {
        self.sizes[id as usize]
    }

    /// The id→fingerprint table (for tie-break comparisons).
    #[must_use]
    pub fn fingerprints(&self) -> &[Fingerprint] {
        &self.fps
    }
}

/// One aggregated row entry of a dense table: a chunk id with its
/// occurrence count and first-seen order (the tie-break key).
///
/// Counts are `u32`: stream positions are already tracked as `u32`
/// throughout the workspace (a single backup holds well under 2^32 logical
/// chunks), so per-table counts fit a fortiori.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DenseEntry {
    /// Dense chunk id (a neighbour id in CSR rows, a chunk id in the
    /// global table).
    pub id: ChunkId,
    /// Number of occurrences.
    pub count: u32,
    /// Stream position of the first occurrence (tie-break key; 0 under
    /// [`TiePolicy::KeyOrder`] and in the global table).
    pub order: u32,
}

impl DenseEntry {
    /// The fingerprint-keyed equivalent of this entry.
    #[must_use]
    pub fn to_freq_entry(self) -> FreqEntry {
        FreqEntry {
            count: u64::from(self.count),
            order: self.order,
        }
    }
}

/// Left or right neighbour co-occurrence tables in compressed-sparse-row
/// form: `row(x)` is the aggregated neighbour list of chunk `x`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CooccurrenceCsr {
    /// `offsets[x]..offsets[x+1]` delimits chunk `x`'s row in `entries`.
    offsets: Vec<u32>,
    entries: Vec<DenseEntry>,
}

/// Which neighbour table a CSR build produces.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Side {
    /// `L[x]` — what precedes `x` in the stream.
    Left,
    /// `R[x]` — what follows `x` in the stream.
    Right,
}

/// Per-worker state of a sharded CSR build: the shard's id range, its
/// bucketed adjacency events, and the aggregation output.
struct CsrShard {
    rows: Range<usize>,
    adjacencies: Vec<(u64, u32)>,
    offsets: Vec<u32>,
    entries: Vec<DenseEntry>,
}

impl CsrShard {
    fn new(rows: Range<usize>) -> Self {
        CsrShard {
            rows,
            adjacencies: Vec::new(),
            offsets: Vec::new(),
            entries: Vec::new(),
        }
    }
}

impl CooccurrenceCsr {
    /// An empty table over `num_ids` chunks.
    #[must_use]
    fn empty(num_ids: usize) -> Self {
        CooccurrenceCsr {
            offsets: vec![0; num_ids + 1],
            entries: Vec::new(),
        }
    }

    /// Builds the table from raw adjacency events.
    ///
    /// Each event is `(key, position)` with `key = chunk << 32 | neighbour`
    /// and `position` the tie-break order of that event. One unstable sort
    /// groups equal adjacencies into runs (the position participates in the
    /// sort key, so each run leads with its minimum — first-seen —
    /// position); a linear scan then aggregates runs into rows.
    fn build(num_ids: usize, mut adjacencies: Vec<(u64, u32)>) -> Self {
        adjacencies.sort_unstable();
        let (offsets, entries) = aggregate_sorted(0..num_ids, &adjacencies);
        CooccurrenceCsr { offsets, entries }
    }

    /// Builds the table by sharding the adjacency events **by chunk-id
    /// range** across up to `threads` workers.
    ///
    /// One sequential O(n) pass buckets every event by the id shard its
    /// *row* chunk belongs to (total bucketing work is independent of the
    /// thread count); the buckets are then sorted and
    /// run-length-aggregated in parallel — the expensive part — and the
    /// per-shard rows stitched together in shard order. Because the
    /// adjacency sort key leads with the row chunk id, concatenating
    /// per-range sorted runs reproduces exactly the globally sorted
    /// adjacency array — so the stitched table is bit-identical to
    /// [`Self::build`]'s at any thread count.
    fn build_sharded(
        num_ids: usize,
        ids: &[ChunkId],
        side: Side,
        policy: TiePolicy,
        threads: usize,
    ) -> Self {
        let ranges = par::shard_ranges(num_ids, threads.max(1));
        if ranges.len() <= 1 {
            // Degenerate stream: the bucketing pass would be the whole
            // cost, so take the sequential build directly.
            return Self::build(num_ids, adjacency_events(ids, side, policy));
        }

        // Bucket by owning id shard: `starts` is small (≤ threads entries),
        // so the partition_point probe stays in L1.
        let starts: Vec<usize> = ranges.iter().map(|r| r.start).collect();
        let mut work: Vec<CsrShard> = ranges.into_iter().map(CsrShard::new).collect();
        for i in 1..ids.len() {
            let (key, order) = adjacency_event(ids, i, side, policy);
            let chunk = (key >> 32) as usize;
            let shard = starts.partition_point(|&s| s <= chunk) - 1;
            work[shard].adjacencies.push((key, order));
        }

        par::par_for_each_mut(threads, &mut work, |_, shard| {
            shard.adjacencies.sort_unstable();
            let (offsets, entries) = aggregate_sorted(shard.rows.clone(), &shard.adjacencies);
            shard.offsets = offsets;
            shard.entries = entries;
        });

        let total: usize = work.iter().map(|s| s.entries.len()).sum();
        let mut offsets = vec![0u32; num_ids + 1];
        let mut entries = Vec::with_capacity(total);
        for shard in work {
            let base = entries.len() as u32;
            for (k, id) in shard.rows.enumerate() {
                offsets[id + 1] = base + shard.offsets[k + 1];
            }
            entries.extend(shard.entries);
        }
        CooccurrenceCsr { offsets, entries }
    }

    /// The aggregated neighbour row of chunk `id` (empty slice if the chunk
    /// has no neighbours on this side).
    #[must_use]
    pub fn row(&self, id: ChunkId) -> &[DenseEntry] {
        let start = self.offsets[id as usize] as usize;
        let end = self.offsets[id as usize + 1] as usize;
        &self.entries[start..end]
    }

    /// Number of chunks the table covers.
    #[must_use]
    pub fn num_rows(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Total number of distinct `(chunk, neighbour)` adjacencies.
    #[must_use]
    pub fn num_entries(&self) -> usize {
        self.entries.len()
    }

    /// Builds the table from **already aggregated** entries sorted by their
    /// packed `(chunk ≪ 32 | neighbour)` key — the materialization path of
    /// the streaming layer ([`crate::streaming`]), whose segment merges
    /// produce exactly this form. No sort, no run detection: one linear
    /// pass lays the rows out.
    pub(crate) fn from_aggregated(
        num_ids: usize,
        aggregated: impl Iterator<Item = (u64, u32, u32)>,
    ) -> Self {
        let mut offsets = vec![0u32; num_ids + 1];
        let mut entries = Vec::new();
        for (key, count, order) in aggregated {
            entries.push(DenseEntry {
                id: key as u32,
                count,
                order,
            });
            offsets[(key >> 32) as usize + 1] = entries.len() as u32;
        }
        for k in 1..offsets.len() {
            if offsets[k] < offsets[k - 1] {
                offsets[k] = offsets[k - 1];
            }
        }
        CooccurrenceCsr { offsets, entries }
    }
}

/// The tie-break order an adjacency event at stream position `i` carries.
fn order_of(i: usize, policy: TiePolicy) -> u32 {
    match policy {
        TiePolicy::StreamOrder => i as u32,
        TiePolicy::KeyOrder => 0,
    }
}

/// The adjacency event for stream index `i ∈ 1..n` on `side`: the packed
/// `(row chunk ≪ 32 | neighbour)` sort key plus its tie-break order.
///
/// For [`Side::Left`] the row chunk is `ids[i]` (its left neighbour is
/// `ids[i-1]`, observed at position `i`); for [`Side::Right`] the row
/// chunk is `ids[i-1]` (its right neighbour is `ids[i]`, observed at
/// position `i-1`). This is the **only** place event derivation lives —
/// the sequential build, the sharded build's degenerate path, the sharded
/// bucketing loop, and the streaming delta builder all call it (the latter
/// through [`adjacency_event_at`]), so the paths cannot drift.
#[inline]
fn adjacency_event(ids: &[ChunkId], i: usize, side: Side, policy: TiePolicy) -> (u64, u32) {
    adjacency_event_at(ids, i, side, policy, 0)
}

/// [`adjacency_event`] for a stream that starts at global position `base`
/// within a larger tape: the tie-break order is the **global** stream
/// position, so per-backup deltas aggregate to exactly the orders a batch
/// `COUNT` over the concatenated tape observes.
#[inline]
pub(crate) fn adjacency_event_at(
    ids: &[ChunkId],
    i: usize,
    side: Side,
    policy: TiePolicy,
    base: usize,
) -> (u64, u32) {
    let (chunk, neighbour, pos) = match side {
        Side::Left => (ids[i], ids[i - 1], i),
        Side::Right => (ids[i - 1], ids[i], i - 1),
    };
    (
        (u64::from(chunk) << 32) | u64::from(neighbour),
        order_of(base + pos, policy),
    )
}

/// All adjacency events of a stream on one side, in stream order.
fn adjacency_events(ids: &[ChunkId], side: Side, policy: TiePolicy) -> Vec<(u64, u32)> {
    (1..ids.len())
        .map(|i| adjacency_event(ids, i, side, policy))
        .collect()
}

/// Run-length-aggregates a **sorted** adjacency slice whose row chunks all
/// fall in `rows`, producing row offsets *relative to `rows.start`* (length
/// `rows.len() + 1`) and the aggregated entries.
///
/// This is the single aggregation kernel shared by the sequential build
/// (`rows = 0..num_ids`) and every parallel shard — the two paths cannot
/// drift apart.
fn aggregate_sorted(rows: Range<usize>, adjacencies: &[(u64, u32)]) -> (Vec<u32>, Vec<DenseEntry>) {
    let mut offsets = vec![0u32; rows.len() + 1];
    let mut entries = Vec::new();
    let mut i = 0;
    while i < adjacencies.len() {
        let (key, first_pos) = adjacencies[i];
        let mut j = i + 1;
        while j < adjacencies.len() && adjacencies[j].0 == key {
            j += 1;
        }
        entries.push(DenseEntry {
            id: key as u32,
            count: (j - i) as u32,
            order: first_pos,
        });
        let chunk = (key >> 32) as usize - rows.start;
        offsets[chunk + 1] = entries.len() as u32;
        i = j;
    }
    // Chunks without neighbours on this side leave zero gaps; forward-
    // fill so every row is a valid (possibly empty) range.
    for k in 1..offsets.len() {
        if offsets[k] < offsets[k - 1] {
            offsets[k] = offsets[k - 1];
        }
    }
    (offsets, entries)
}

/// The output of `COUNT` in dense form: the id-indexed analogue of
/// [`ChunkStats`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DenseStats {
    /// Fingerprint ⇄ id mapping plus per-id sizes.
    pub interner: ChunkInterner,
    /// `F[x]` — occurrence count per dense id (global order is always 0:
    /// the global table is fingerprint-keyed, so ties fall through to the
    /// fingerprint comparison, exactly like the hash-map path).
    pub freq: Vec<u32>,
    /// `L[x]` — left-neighbour rows.
    pub left: CooccurrenceCsr,
    /// `R[x]` — right-neighbour rows.
    pub right: CooccurrenceCsr,
}

impl DenseStats {
    /// Runs `COUNT` over a backup, frequencies only (the basic attack's
    /// cheap path): interning plus a single counting pass, no CSR build.
    #[must_use]
    pub fn frequencies_only(backup: &Backup) -> Self {
        Self::frequencies_only_par(backup, ParConfig::sequential())
    }

    /// [`Self::frequencies_only`] with the counting pass sharded across
    /// worker threads (per-shard count arrays over contiguous stream
    /// ranges, summed elementwise in shard order — bit-identical output at
    /// any thread count).
    #[must_use]
    pub fn frequencies_only_par(backup: &Backup, par: ParConfig) -> Self {
        let (interner, ids) = intern_stream(backup);
        let unique = interner.len();
        let freq = count_ids_par(&ids, unique, par.resolve());
        DenseStats {
            interner,
            freq,
            left: CooccurrenceCsr::empty(unique),
            right: CooccurrenceCsr::empty(unique),
        }
    }

    /// Runs the full `COUNT` of Algorithm 2 with the default
    /// [`TiePolicy::StreamOrder`].
    #[must_use]
    pub fn full(backup: &Backup) -> Self {
        Self::full_with_policy(backup, TiePolicy::StreamOrder)
    }

    /// Runs the full `COUNT` of Algorithm 2: interning, global frequencies
    /// and both CSR neighbour tables, with an explicit neighbour tie-break
    /// policy.
    #[must_use]
    pub fn full_with_policy(backup: &Backup, policy: TiePolicy) -> Self {
        let (interner, ids) = intern_stream(backup);
        let unique = interner.len();
        let freq = count_ids(&ids, unique);
        let left = CooccurrenceCsr::build(unique, adjacency_events(&ids, Side::Left, policy));
        let right = CooccurrenceCsr::build(unique, adjacency_events(&ids, Side::Right, policy));
        DenseStats {
            interner,
            freq,
            left,
            right,
        }
    }

    /// The full `COUNT` of Algorithm 2 with the frequency pass and both
    /// CSR neighbour-table builds sharded across worker threads.
    ///
    /// Interning stays sequential — id assignment is first-seen order, an
    /// inherently serial definition — but it is one hash pass; the sorts
    /// dominate at scale. Frequencies shard by contiguous stream range and
    /// merge by elementwise sum; the neighbour tables shard **by chunk-id
    /// range** (see [`CooccurrenceCsr`] internals), so every merged
    /// structure is bit-identical to [`Self::full_with_policy`]'s output
    /// at any thread count. `par` resolving to 1 takes the sequential path
    /// unchanged.
    #[must_use]
    pub fn full_with_policy_par(backup: &Backup, policy: TiePolicy, par: ParConfig) -> Self {
        let threads = par.resolve();
        if threads <= 1 {
            return Self::full_with_policy(backup, policy);
        }
        let (interner, ids) = intern_stream(backup);
        let unique = interner.len();
        let freq = count_ids_par(&ids, unique, threads);
        let left = CooccurrenceCsr::build_sharded(unique, &ids, Side::Left, policy, threads);
        let right = CooccurrenceCsr::build_sharded(unique, &ids, Side::Right, policy, threads);
        DenseStats {
            interner,
            freq,
            left,
            right,
        }
    }

    /// The full `COUNT` of Algorithm 2 with both frequency and CSR tables
    /// built for **both** [`TiePolicy`] variants from **one** interning and
    /// counting pass (returned in `[StreamOrder, KeyOrder]` order).
    ///
    /// The policy only affects the tie-break orders carried by adjacency
    /// events, never the interner or the frequency array, so those are
    /// shared and cloned — each returned stats value is bit-identical to
    /// [`Self::full_with_policy_par`] under the same policy.
    #[must_use]
    pub fn full_both_policies_par(backup: &Backup, par: ParConfig) -> [Self; 2] {
        let threads = par.resolve();
        let (interner, ids) = intern_stream(backup);
        let unique = interner.len();
        let freq = count_ids_par(&ids, unique, threads);
        [TiePolicy::StreamOrder, TiePolicy::KeyOrder].map(|policy| {
            let (left, right) = if threads <= 1 {
                (
                    CooccurrenceCsr::build(unique, adjacency_events(&ids, Side::Left, policy)),
                    CooccurrenceCsr::build(unique, adjacency_events(&ids, Side::Right, policy)),
                )
            } else {
                (
                    CooccurrenceCsr::build_sharded(unique, &ids, Side::Left, policy, threads),
                    CooccurrenceCsr::build_sharded(unique, &ids, Side::Right, policy, threads),
                )
            };
            DenseStats {
                interner: interner.clone(),
                freq: freq.clone(),
                left,
                right,
            }
        })
    }

    /// Batch `COUNT` over a **tape** of backups — the full-recompute oracle
    /// the streaming layer ([`crate::streaming`]) is property-tested
    /// against.
    ///
    /// Tape semantics: ids are interned first-seen across the whole tape in
    /// tape order; frequencies sum over all backups; adjacency events exist
    /// only *within* each backup (the last chunk of one backup is not the
    /// left neighbour of the next backup's first chunk); and under
    /// [`TiePolicy::StreamOrder`] the tie-break order of an event is its
    /// **global** stream position (the backup's cumulative chunk offset
    /// plus the local position). For a single-backup tape this is exactly
    /// [`Self::full_with_policy`].
    #[must_use]
    pub fn full_series_with_policy(tape: &[Backup], policy: TiePolicy) -> Self {
        let mut interner = ChunkInterner::new();
        let mut left_events = Vec::new();
        let mut right_events = Vec::new();
        let mut freq_ids: Vec<ChunkId> = Vec::new();
        let mut base = 0usize;
        for backup in tape {
            let ids: Vec<ChunkId> = backup
                .chunks
                .iter()
                .map(|rec| interner.intern(rec.fp, rec.size))
                .collect();
            for i in 1..ids.len() {
                left_events.push(adjacency_event_at(&ids, i, Side::Left, policy, base));
                right_events.push(adjacency_event_at(&ids, i, Side::Right, policy, base));
            }
            base += ids.len();
            freq_ids.extend(ids);
        }
        let unique = interner.len();
        let freq = count_ids(&freq_ids, unique);
        let left = CooccurrenceCsr::build(unique, left_events);
        let right = CooccurrenceCsr::build(unique, right_events);
        DenseStats {
            interner,
            freq,
            left,
            right,
        }
    }

    /// Number of unique chunks counted.
    #[must_use]
    pub fn unique_chunks(&self) -> usize {
        self.interner.len()
    }

    /// The global frequency table materialized as dense rows (id order;
    /// ranking is canonical, so row order is irrelevant).
    #[must_use]
    pub fn global_rows(&self) -> Vec<DenseEntry> {
        self.freq
            .iter()
            .enumerate()
            .map(|(id, &count)| DenseEntry {
                id: id as u32,
                count,
                order: 0,
            })
            .collect()
    }

    /// Size in 16-byte cipher blocks of a counted chunk (`ceil(size/16)`),
    /// the advanced attack's classification key.
    #[must_use]
    pub fn blocks_of(&self, id: ChunkId) -> u32 {
        self.interner.size(id).div_ceil(16)
    }

    /// Exports to the fingerprint-keyed [`ChunkStats`] representation (the
    /// compatibility surface for figure binaries and older call sites).
    #[must_use]
    pub fn to_chunk_stats(&self) -> ChunkStats {
        let unique = self.unique_chunks();
        let mut stats = ChunkStats {
            freq: HashMap::with_capacity(unique),
            left: HashMap::with_capacity(unique),
            right: HashMap::with_capacity(unique),
            sizes: HashMap::with_capacity(unique),
        };
        for id in 0..unique as u32 {
            let fp = self.interner.fingerprint(id);
            stats.freq.insert(
                fp,
                FreqEntry {
                    count: u64::from(self.freq[id as usize]),
                    order: 0,
                },
            );
            stats.sizes.insert(fp, self.interner.size(id));
            for (csr, table) in [
                (&self.left, &mut stats.left),
                (&self.right, &mut stats.right),
            ] {
                let row = csr.row(id);
                if !row.is_empty() {
                    table.insert(
                        fp,
                        row.iter()
                            .map(|e| (self.interner.fingerprint(e.id), e.to_freq_entry()))
                            .collect(),
                    );
                }
            }
        }
        stats
    }
}

/// Read access to `COUNT` output in dense-id space — the surface the
/// attack crawl runs on.
///
/// Two implementations exist: [`DenseStats`] (batch: rows are contiguous
/// CSR slices, returned without touching the scratch buffer — zero cost
/// over direct field access) and [`crate::streaming::IncrementalStats`]
/// (streaming: rows are merged on the fly from CSR segments into the
/// caller's scratch buffer). Both expose the *same* aggregated rows for
/// the same observed stream, which is what makes streaming inference
/// bit-identical to the batch path.
pub trait StatsView {
    /// Number of unique chunks counted.
    fn unique_chunks(&self) -> usize;

    /// The id→fingerprint table (for canonical tie-breaking).
    fn fingerprints(&self) -> &[Fingerprint];

    /// The dense id of `fp`, if it has been counted.
    fn id_of(&self, fp: Fingerprint) -> Option<ChunkId>;

    /// Size of a counted chunk in 16-byte cipher blocks (`ceil(size/16)`).
    fn blocks_of(&self, id: ChunkId) -> u32;

    /// The global frequency table materialized as dense rows (order always
    /// 0 — global ties fall through to the fingerprint comparison).
    fn global_rows(&self) -> Vec<DenseEntry>;

    /// The aggregated left-neighbour row of `id`. `scratch` is merge space
    /// for implementations without contiguous rows; callers must treat it
    /// as invalidated by the next `*_row` call.
    fn left_row<'a>(&'a self, id: ChunkId, scratch: &'a mut Vec<DenseEntry>) -> &'a [DenseEntry];

    /// The aggregated right-neighbour row of `id` (same scratch contract
    /// as [`Self::left_row`]).
    fn right_row<'a>(&'a self, id: ChunkId, scratch: &'a mut Vec<DenseEntry>) -> &'a [DenseEntry];
}

impl StatsView for DenseStats {
    fn unique_chunks(&self) -> usize {
        DenseStats::unique_chunks(self)
    }

    fn fingerprints(&self) -> &[Fingerprint] {
        self.interner.fingerprints()
    }

    fn id_of(&self, fp: Fingerprint) -> Option<ChunkId> {
        self.interner.get(fp)
    }

    fn blocks_of(&self, id: ChunkId) -> u32 {
        DenseStats::blocks_of(self, id)
    }

    fn global_rows(&self) -> Vec<DenseEntry> {
        DenseStats::global_rows(self)
    }

    fn left_row<'a>(&'a self, id: ChunkId, _scratch: &'a mut Vec<DenseEntry>) -> &'a [DenseEntry] {
        self.left.row(id)
    }

    fn right_row<'a>(&'a self, id: ChunkId, _scratch: &'a mut Vec<DenseEntry>) -> &'a [DenseEntry] {
        self.right.row(id)
    }
}

/// Interns a backup's chunk stream, returning the interner and the stream
/// as dense ids.
fn intern_stream(backup: &Backup) -> (ChunkInterner, Vec<ChunkId>) {
    let mut interner = ChunkInterner::new();
    let ids = backup
        .chunks
        .iter()
        .map(|rec| interner.intern(rec.fp, rec.size))
        .collect();
    (interner, ids)
}

/// Counts occurrences per dense id.
fn count_ids(ids: &[ChunkId], unique: usize) -> Vec<u32> {
    let mut freq = vec![0u32; unique];
    for &id in ids {
        freq[id as usize] += 1;
    }
    freq
}

/// [`count_ids`] sharded over contiguous stream ranges; per-shard count
/// arrays are summed elementwise in shard order (addition is commutative,
/// so the result is the sequential count exactly).
fn count_ids_par(ids: &[ChunkId], unique: usize, threads: usize) -> Vec<u32> {
    if threads <= 1 {
        return count_ids(ids, unique);
    }
    par::par_fold(
        threads,
        ids.len(),
        |range| count_ids(&ids[range], unique),
        |mut acc, shard| {
            for (a, s) in acc.iter_mut().zip(&shard) {
                *a += s;
            }
            acc
        },
        vec![0u32; unique],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use freqdedup_trace::ChunkRecord;

    fn backup(fps: &[u64]) -> Backup {
        Backup::from_chunks("t", fps.iter().map(|&f| ChunkRecord::new(f, 8)).collect())
    }

    fn fp(v: u64) -> Fingerprint {
        Fingerprint(v)
    }

    #[test]
    fn interner_assigns_first_seen_order() {
        let mut it = ChunkInterner::new();
        assert_eq!(it.intern(fp(9), 1), 0);
        assert_eq!(it.intern(fp(3), 2), 1);
        assert_eq!(it.intern(fp(9), 1), 0);
        assert_eq!(it.len(), 2);
        assert_eq!(it.fingerprint(1), fp(3));
        assert_eq!(it.size(1), 2);
        assert_eq!(it.get(fp(3)), Some(1));
        assert_eq!(it.get(fp(4)), None);
    }

    #[test]
    fn interner_keeps_first_size() {
        let mut it = ChunkInterner::new();
        it.intern(fp(1), 100);
        it.intern(fp(1), 200);
        assert_eq!(it.size(0), 100);
    }

    #[test]
    fn dense_frequencies_match() {
        let s = DenseStats::full(&backup(&[1, 2, 1, 1]));
        let id1 = s.interner.get(fp(1)).unwrap();
        let id2 = s.interner.get(fp(2)).unwrap();
        assert_eq!(s.freq[id1 as usize], 3);
        assert_eq!(s.freq[id2 as usize], 1);
        assert_eq!(s.unique_chunks(), 2);
    }

    #[test]
    fn csr_rows_aggregate_counts_and_first_seen_order() {
        // Sequence: 1 2 1 2 — chunk 2 has left neighbour 1 twice (first at
        // stream position 1); chunk 1 has left neighbour 2 once (position 2).
        let s = DenseStats::full(&backup(&[1, 2, 1, 2]));
        let id1 = s.interner.get(fp(1)).unwrap();
        let id2 = s.interner.get(fp(2)).unwrap();
        let row2 = s.left.row(id2);
        assert_eq!(row2.len(), 1);
        assert_eq!(
            row2[0],
            DenseEntry {
                id: id1,
                count: 2,
                order: 1
            }
        );
        let row1 = s.left.row(id1);
        assert_eq!(
            row1[0],
            DenseEntry {
                id: id2,
                count: 1,
                order: 2
            }
        );
        let r1 = s.right.row(id1);
        assert_eq!(
            r1[0],
            DenseEntry {
                id: id2,
                count: 2,
                order: 0
            }
        );
    }

    #[test]
    fn key_order_policy_zeroes_orders() {
        let s = DenseStats::full_with_policy(&backup(&[1, 2, 1, 2]), TiePolicy::KeyOrder);
        for id in 0..s.unique_chunks() as u32 {
            for e in s.left.row(id).iter().chain(s.right.row(id)) {
                assert_eq!(e.order, 0);
            }
        }
    }

    #[test]
    fn boundary_chunks_have_one_sided_rows() {
        let s = DenseStats::full(&backup(&[1, 2]));
        let id1 = s.interner.get(fp(1)).unwrap();
        let id2 = s.interner.get(fp(2)).unwrap();
        assert!(s.left.row(id1).is_empty());
        assert!(s.right.row(id2).is_empty());
        assert_eq!(s.left.row(id2).len(), 1);
        assert_eq!(s.right.row(id1).len(), 1);
    }

    #[test]
    fn empty_and_singleton_backups() {
        let s = DenseStats::full(&backup(&[]));
        assert_eq!(s.unique_chunks(), 0);
        assert!(s.global_rows().is_empty());
        let s = DenseStats::full(&backup(&[42]));
        assert_eq!(s.unique_chunks(), 1);
        assert!(s.left.row(0).is_empty());
        assert!(s.right.row(0).is_empty());
    }

    #[test]
    fn to_chunk_stats_round_trips_paper_example() {
        // C = ⟨C1 C2 C5 C2 C1 C2 C3 C4 C2 C3 C4 C4⟩ (§4.2).
        let b = backup(&[1, 2, 5, 2, 1, 2, 3, 4, 2, 3, 4, 4]);
        let dense = DenseStats::full(&b).to_chunk_stats();
        let legacy = ChunkStats::full(&b);
        assert_eq!(dense.freq, legacy.freq);
        assert_eq!(dense.left, legacy.left);
        assert_eq!(dense.right, legacy.right);
        assert_eq!(dense.sizes, legacy.sizes);
    }

    #[test]
    fn frequencies_only_skips_csr() {
        let s = DenseStats::frequencies_only(&backup(&[1, 2, 1]));
        assert_eq!(s.freq[0], 2);
        assert_eq!(s.left.num_entries(), 0);
        assert_eq!(s.right.num_entries(), 0);
        assert_eq!(s.left.num_rows(), 2);
    }

    #[test]
    fn parallel_count_matches_sequential() {
        // A skewed stream with heavy duplication: ties, shared
        // neighbourhoods, and ids spanning several shard ranges.
        let fps: Vec<u64> = (0..500u64).map(|i| (i * i) % 37).collect();
        let b = backup(&fps);
        for policy in [TiePolicy::StreamOrder, TiePolicy::KeyOrder] {
            let seq = DenseStats::full_with_policy(&b, policy);
            for t in [1usize, 2, 3, 8, 64] {
                let par = DenseStats::full_with_policy_par(&b, policy, ParConfig::with_threads(t));
                assert_eq!(par, seq, "threads {t} policy {policy:?}");
            }
        }
    }

    #[test]
    fn parallel_frequencies_match_sequential() {
        let fps: Vec<u64> = (0..300u64).map(|i| i % 23).collect();
        let b = backup(&fps);
        let seq = DenseStats::frequencies_only(&b);
        for t in [2usize, 8] {
            let par = DenseStats::frequencies_only_par(&b, ParConfig::with_threads(t));
            assert_eq!(par, seq, "threads {t}");
        }
    }

    #[test]
    fn parallel_count_handles_degenerate_backups() {
        for fps in [&[][..], &[42][..], &[7, 7, 7][..]] {
            let b = backup(fps);
            let seq = DenseStats::full(&b);
            let par = DenseStats::full_with_policy_par(
                &b,
                TiePolicy::StreamOrder,
                ParConfig::with_threads(8),
            );
            assert_eq!(par, seq);
        }
    }

    #[test]
    fn both_policies_share_one_build_and_match_individual_builds() {
        let fps: Vec<u64> = (0..400u64).map(|i| (i * 7) % 61).collect();
        let b = backup(&fps);
        for t in [1usize, 4] {
            let [stream, key] = DenseStats::full_both_policies_par(&b, ParConfig::with_threads(t));
            assert_eq!(
                stream,
                DenseStats::full_with_policy_par(
                    &b,
                    TiePolicy::StreamOrder,
                    ParConfig::with_threads(t)
                ),
                "threads {t}"
            );
            assert_eq!(
                key,
                DenseStats::full_with_policy_par(
                    &b,
                    TiePolicy::KeyOrder,
                    ParConfig::with_threads(t)
                ),
                "threads {t}"
            );
        }
    }

    #[test]
    fn series_of_one_backup_equals_single_batch() {
        let b = backup(&[1, 2, 5, 2, 1, 2, 3, 4, 2, 3, 4, 4]);
        for policy in [TiePolicy::StreamOrder, TiePolicy::KeyOrder] {
            let series = DenseStats::full_series_with_policy(std::slice::from_ref(&b), policy);
            assert_eq!(series, DenseStats::full_with_policy(&b, policy));
        }
    }

    #[test]
    fn series_keeps_backups_adjacency_separate_but_frequencies_summed() {
        // Tape ⟨1 2⟩, ⟨2 3⟩: each backup is its own stream, so the backup
        // boundary 2|2 contributes no adjacency — 2's right neighbour 3
        // comes only from the second backup's interior edge.
        let tape = [backup(&[1, 2]), backup(&[2, 3])];
        let s = DenseStats::full_series_with_policy(&tape, TiePolicy::StreamOrder);
        let id1 = s.interner.get(fp(1)).unwrap();
        let id2 = s.interner.get(fp(2)).unwrap();
        let id3 = s.interner.get(fp(3)).unwrap();
        assert_eq!(s.freq[id2 as usize], 2);
        // Within-backup edges only: R[1] = {2}, R[2] = {3}; no R[2] = {2}.
        assert_eq!(s.right.row(id1).len(), 1);
        let row2 = s.right.row(id2);
        assert_eq!(row2.len(), 1);
        // Global stream position: the ⟨2 3⟩ edge sits at tape position 2.
        assert_eq!(
            row2[0],
            DenseEntry {
                id: id3,
                count: 1,
                order: 2
            }
        );
    }

    #[test]
    fn from_aggregated_reproduces_built_table() {
        let fps: Vec<u64> = (0..300u64).map(|i| (i * 13) % 41).collect();
        let b = backup(&fps);
        let s = DenseStats::full(&b);
        for csr in [&s.left, &s.right] {
            let rebuilt = CooccurrenceCsr::from_aggregated(
                csr.num_rows(),
                (0..csr.num_rows() as u32).flat_map(|row| {
                    csr.row(row)
                        .iter()
                        .map(move |e| ((u64::from(row) << 32) | u64::from(e.id), e.count, e.order))
                }),
            );
            assert_eq!(&rebuilt, csr);
        }
    }

    #[test]
    fn stats_view_rows_match_direct_access() {
        let b = backup(&[1, 2, 1, 2, 3]);
        let s = DenseStats::full(&b);
        let mut scratch = Vec::new();
        for id in 0..s.unique_chunks() as u32 {
            assert_eq!(StatsView::left_row(&s, id, &mut scratch), s.left.row(id));
            assert_eq!(StatsView::right_row(&s, id, &mut scratch), s.right.row(id));
        }
        assert_eq!(StatsView::id_of(&s, fp(3)), s.interner.get(fp(3)));
        assert_eq!(StatsView::global_rows(&s), s.global_rows());
    }

    #[test]
    fn blocks_of_rounds_up() {
        let b = Backup::from_chunks(
            "t",
            vec![ChunkRecord::new(1u64, 17), ChunkRecord::new(2u64, 16)],
        );
        let s = DenseStats::full(&b);
        assert_eq!(s.blocks_of(s.interner.get(fp(1)).unwrap()), 2);
        assert_eq!(s.blocks_of(s.interner.get(fp(2)).unwrap()), 1);
    }
}
