//! Dense chunk-ID interning and CSR co-occurrence tables — the data layer
//! the attack hot path runs on.
//!
//! The fingerprint-keyed [`ChunkStats`] tables of [`crate::counting`] are a
//! faithful model of the paper's LevelDB layout, but a poor fit for the
//! `COUNT` + crawl hot path at scale: every unique chunk owns two
//! heap-allocated `HashMap`s (left and right neighbours), every probe pays
//! SipHash over a 64-bit key, and the crawl's memory accesses are scattered
//! across millions of tiny maps. This module replaces that layout with
//! three flat structures:
//!
//! * [`ChunkInterner`] — one pass over the backup maps each fingerprint to
//!   a contiguous `u32` id (first-seen order), backed by the vendored
//!   FxHash hasher. Fingerprints are outputs of a cryptographic hash, so
//!   the fast multiply-rotate mix loses nothing.
//! * [`CooccurrenceCsr`] — the left/right neighbour tables as CSR
//!   (compressed sparse row) arrays: all `(chunk, neighbour)` adjacencies
//!   are collected as packed `u64` keys, sorted **once**, and run-length
//!   aggregated into per-chunk rows of [`DenseEntry`]. Zero per-chunk maps;
//!   one sort replaces millions of hash probes; each crawl step reads a
//!   contiguous row.
//! * [`DenseStats`] — the dense analogue of [`ChunkStats`]: a global
//!   frequency array indexed by id plus the two CSR tables.
//!
//! **Tie-break equivalence.** The canonical ranking order — higher count,
//! then earlier first-seen stream position, then smaller fingerprint — is
//! preserved bit-for-bit. Counts and orders are aggregated from exactly the
//! same `(position, adjacency)` events the hash-map path observes (the
//! sort key includes the position, so a run's first element carries the
//! minimum, i.e. first-seen, position), and the final fingerprint tie-break
//! resolves through the interner's id→fingerprint table rather than the id
//! itself, so interning cannot reorder ties. The property tests in
//! `tests/dense_equivalence.rs` verify identity against the fingerprint
//! -keyed path on randomized backups under both [`TiePolicy`] variants.

use std::collections::HashMap;

use freqdedup_trace::{Backup, Fingerprint};
use rustc_hash::FxHashMap;

use crate::counting::{ChunkStats, FreqEntry, TiePolicy};

/// A dense chunk id: index into the interner's fingerprint/size tables.
pub type ChunkId = u32;

/// Maps 64-bit fingerprints to contiguous `u32` ids in first-seen order.
///
/// Also records each unique chunk's observed size (first observation wins;
/// sizes are deterministic per content, so every observation is equal).
#[derive(Clone, Debug, Default)]
pub struct ChunkInterner {
    map: FxHashMap<Fingerprint, ChunkId>,
    fps: Vec<Fingerprint>,
    sizes: Vec<u32>,
}

impl ChunkInterner {
    /// Creates an empty interner.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `fp`, returning its dense id (allocating the next id on
    /// first sight).
    ///
    /// # Panics
    ///
    /// Panics if more than `u32::MAX` unique chunks are interned.
    pub fn intern(&mut self, fp: Fingerprint, size: u32) -> ChunkId {
        if let Some(&id) = self.map.get(&fp) {
            return id;
        }
        let id = u32::try_from(self.fps.len()).expect("more than u32::MAX unique chunks");
        self.map.insert(fp, id);
        self.fps.push(fp);
        self.sizes.push(size);
        id
    }

    /// The id of `fp`, if it has been interned.
    #[must_use]
    pub fn get(&self, fp: Fingerprint) -> Option<ChunkId> {
        self.map.get(&fp).copied()
    }

    /// Number of unique chunks interned.
    #[must_use]
    pub fn len(&self) -> usize {
        self.fps.len()
    }

    /// Whether nothing has been interned.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.fps.is_empty()
    }

    /// The fingerprint of a dense id.
    #[must_use]
    pub fn fingerprint(&self, id: ChunkId) -> Fingerprint {
        self.fps[id as usize]
    }

    /// The observed size in bytes of a dense id.
    #[must_use]
    pub fn size(&self, id: ChunkId) -> u32 {
        self.sizes[id as usize]
    }

    /// The id→fingerprint table (for tie-break comparisons).
    #[must_use]
    pub fn fingerprints(&self) -> &[Fingerprint] {
        &self.fps
    }
}

/// One aggregated row entry of a dense table: a chunk id with its
/// occurrence count and first-seen order (the tie-break key).
///
/// Counts are `u32`: stream positions are already tracked as `u32`
/// throughout the workspace (a single backup holds well under 2^32 logical
/// chunks), so per-table counts fit a fortiori.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DenseEntry {
    /// Dense chunk id (a neighbour id in CSR rows, a chunk id in the
    /// global table).
    pub id: ChunkId,
    /// Number of occurrences.
    pub count: u32,
    /// Stream position of the first occurrence (tie-break key; 0 under
    /// [`TiePolicy::KeyOrder`] and in the global table).
    pub order: u32,
}

impl DenseEntry {
    /// The fingerprint-keyed equivalent of this entry.
    #[must_use]
    pub fn to_freq_entry(self) -> FreqEntry {
        FreqEntry {
            count: u64::from(self.count),
            order: self.order,
        }
    }
}

/// Left or right neighbour co-occurrence tables in compressed-sparse-row
/// form: `row(x)` is the aggregated neighbour list of chunk `x`.
#[derive(Clone, Debug, Default)]
pub struct CooccurrenceCsr {
    /// `offsets[x]..offsets[x+1]` delimits chunk `x`'s row in `entries`.
    offsets: Vec<u32>,
    entries: Vec<DenseEntry>,
}

impl CooccurrenceCsr {
    /// An empty table over `num_ids` chunks.
    #[must_use]
    fn empty(num_ids: usize) -> Self {
        CooccurrenceCsr {
            offsets: vec![0; num_ids + 1],
            entries: Vec::new(),
        }
    }

    /// Builds the table from raw adjacency events.
    ///
    /// Each event is `(key, position)` with `key = chunk << 32 | neighbour`
    /// and `position` the tie-break order of that event. One unstable sort
    /// groups equal adjacencies into runs (the position participates in the
    /// sort key, so each run leads with its minimum — first-seen —
    /// position); a linear scan then aggregates runs into rows.
    fn build(num_ids: usize, mut adjacencies: Vec<(u64, u32)>) -> Self {
        adjacencies.sort_unstable();
        let mut offsets = vec![0u32; num_ids + 1];
        let mut entries = Vec::new();
        let mut i = 0;
        while i < adjacencies.len() {
            let (key, first_pos) = adjacencies[i];
            let mut j = i + 1;
            while j < adjacencies.len() && adjacencies[j].0 == key {
                j += 1;
            }
            entries.push(DenseEntry {
                id: key as u32,
                count: (j - i) as u32,
                order: first_pos,
            });
            let chunk = (key >> 32) as usize;
            offsets[chunk + 1] = entries.len() as u32;
            i = j;
        }
        // Chunks without neighbours on this side leave zero gaps; forward-
        // fill so every row is a valid (possibly empty) range.
        for k in 1..offsets.len() {
            if offsets[k] < offsets[k - 1] {
                offsets[k] = offsets[k - 1];
            }
        }
        CooccurrenceCsr { offsets, entries }
    }

    /// The aggregated neighbour row of chunk `id` (empty slice if the chunk
    /// has no neighbours on this side).
    #[must_use]
    pub fn row(&self, id: ChunkId) -> &[DenseEntry] {
        let start = self.offsets[id as usize] as usize;
        let end = self.offsets[id as usize + 1] as usize;
        &self.entries[start..end]
    }

    /// Number of chunks the table covers.
    #[must_use]
    pub fn num_rows(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Total number of distinct `(chunk, neighbour)` adjacencies.
    #[must_use]
    pub fn num_entries(&self) -> usize {
        self.entries.len()
    }
}

/// The output of `COUNT` in dense form: the id-indexed analogue of
/// [`ChunkStats`].
#[derive(Clone, Debug, Default)]
pub struct DenseStats {
    /// Fingerprint ⇄ id mapping plus per-id sizes.
    pub interner: ChunkInterner,
    /// `F[x]` — occurrence count per dense id (global order is always 0:
    /// the global table is fingerprint-keyed, so ties fall through to the
    /// fingerprint comparison, exactly like the hash-map path).
    pub freq: Vec<u32>,
    /// `L[x]` — left-neighbour rows.
    pub left: CooccurrenceCsr,
    /// `R[x]` — right-neighbour rows.
    pub right: CooccurrenceCsr,
}

impl DenseStats {
    /// Runs `COUNT` over a backup, frequencies only (the basic attack's
    /// cheap path): interning plus a single counting pass, no CSR build.
    #[must_use]
    pub fn frequencies_only(backup: &Backup) -> Self {
        let (interner, ids) = intern_stream(backup);
        let freq = count_ids(&ids, interner.len());
        let unique = interner.len();
        DenseStats {
            interner,
            freq,
            left: CooccurrenceCsr::empty(unique),
            right: CooccurrenceCsr::empty(unique),
        }
    }

    /// Runs the full `COUNT` of Algorithm 2 with the default
    /// [`TiePolicy::StreamOrder`].
    #[must_use]
    pub fn full(backup: &Backup) -> Self {
        Self::full_with_policy(backup, TiePolicy::StreamOrder)
    }

    /// Runs the full `COUNT` of Algorithm 2: interning, global frequencies
    /// and both CSR neighbour tables, with an explicit neighbour tie-break
    /// policy.
    #[must_use]
    pub fn full_with_policy(backup: &Backup, policy: TiePolicy) -> Self {
        let (interner, ids) = intern_stream(backup);
        let unique = interner.len();
        let freq = count_ids(&ids, unique);

        let n = ids.len();
        let mut left_adj = Vec::with_capacity(n.saturating_sub(1));
        let mut right_adj = Vec::with_capacity(n.saturating_sub(1));
        for i in 1..n {
            let order = match policy {
                TiePolicy::StreamOrder => i as u32,
                TiePolicy::KeyOrder => 0,
            };
            left_adj.push(((u64::from(ids[i]) << 32) | u64::from(ids[i - 1]), order));
        }
        for i in 0..n.saturating_sub(1) {
            let order = match policy {
                TiePolicy::StreamOrder => i as u32,
                TiePolicy::KeyOrder => 0,
            };
            right_adj.push(((u64::from(ids[i]) << 32) | u64::from(ids[i + 1]), order));
        }

        DenseStats {
            interner,
            freq,
            left: CooccurrenceCsr::build(unique, left_adj),
            right: CooccurrenceCsr::build(unique, right_adj),
        }
    }

    /// Number of unique chunks counted.
    #[must_use]
    pub fn unique_chunks(&self) -> usize {
        self.interner.len()
    }

    /// The global frequency table materialized as dense rows (id order;
    /// ranking is canonical, so row order is irrelevant).
    #[must_use]
    pub fn global_rows(&self) -> Vec<DenseEntry> {
        self.freq
            .iter()
            .enumerate()
            .map(|(id, &count)| DenseEntry {
                id: id as u32,
                count,
                order: 0,
            })
            .collect()
    }

    /// Size in 16-byte cipher blocks of a counted chunk (`ceil(size/16)`),
    /// the advanced attack's classification key.
    #[must_use]
    pub fn blocks_of(&self, id: ChunkId) -> u32 {
        self.interner.size(id).div_ceil(16)
    }

    /// Exports to the fingerprint-keyed [`ChunkStats`] representation (the
    /// compatibility surface for figure binaries and older call sites).
    #[must_use]
    pub fn to_chunk_stats(&self) -> ChunkStats {
        let unique = self.unique_chunks();
        let mut stats = ChunkStats {
            freq: HashMap::with_capacity(unique),
            left: HashMap::with_capacity(unique),
            right: HashMap::with_capacity(unique),
            sizes: HashMap::with_capacity(unique),
        };
        for id in 0..unique as u32 {
            let fp = self.interner.fingerprint(id);
            stats.freq.insert(
                fp,
                FreqEntry {
                    count: u64::from(self.freq[id as usize]),
                    order: 0,
                },
            );
            stats.sizes.insert(fp, self.interner.size(id));
            for (csr, table) in [
                (&self.left, &mut stats.left),
                (&self.right, &mut stats.right),
            ] {
                let row = csr.row(id);
                if !row.is_empty() {
                    table.insert(
                        fp,
                        row.iter()
                            .map(|e| (self.interner.fingerprint(e.id), e.to_freq_entry()))
                            .collect(),
                    );
                }
            }
        }
        stats
    }
}

/// Interns a backup's chunk stream, returning the interner and the stream
/// as dense ids.
fn intern_stream(backup: &Backup) -> (ChunkInterner, Vec<ChunkId>) {
    let mut interner = ChunkInterner::new();
    let ids = backup
        .chunks
        .iter()
        .map(|rec| interner.intern(rec.fp, rec.size))
        .collect();
    (interner, ids)
}

/// Counts occurrences per dense id.
fn count_ids(ids: &[ChunkId], unique: usize) -> Vec<u32> {
    let mut freq = vec![0u32; unique];
    for &id in ids {
        freq[id as usize] += 1;
    }
    freq
}

#[cfg(test)]
mod tests {
    use super::*;
    use freqdedup_trace::ChunkRecord;

    fn backup(fps: &[u64]) -> Backup {
        Backup::from_chunks("t", fps.iter().map(|&f| ChunkRecord::new(f, 8)).collect())
    }

    fn fp(v: u64) -> Fingerprint {
        Fingerprint(v)
    }

    #[test]
    fn interner_assigns_first_seen_order() {
        let mut it = ChunkInterner::new();
        assert_eq!(it.intern(fp(9), 1), 0);
        assert_eq!(it.intern(fp(3), 2), 1);
        assert_eq!(it.intern(fp(9), 1), 0);
        assert_eq!(it.len(), 2);
        assert_eq!(it.fingerprint(1), fp(3));
        assert_eq!(it.size(1), 2);
        assert_eq!(it.get(fp(3)), Some(1));
        assert_eq!(it.get(fp(4)), None);
    }

    #[test]
    fn interner_keeps_first_size() {
        let mut it = ChunkInterner::new();
        it.intern(fp(1), 100);
        it.intern(fp(1), 200);
        assert_eq!(it.size(0), 100);
    }

    #[test]
    fn dense_frequencies_match() {
        let s = DenseStats::full(&backup(&[1, 2, 1, 1]));
        let id1 = s.interner.get(fp(1)).unwrap();
        let id2 = s.interner.get(fp(2)).unwrap();
        assert_eq!(s.freq[id1 as usize], 3);
        assert_eq!(s.freq[id2 as usize], 1);
        assert_eq!(s.unique_chunks(), 2);
    }

    #[test]
    fn csr_rows_aggregate_counts_and_first_seen_order() {
        // Sequence: 1 2 1 2 — chunk 2 has left neighbour 1 twice (first at
        // stream position 1); chunk 1 has left neighbour 2 once (position 2).
        let s = DenseStats::full(&backup(&[1, 2, 1, 2]));
        let id1 = s.interner.get(fp(1)).unwrap();
        let id2 = s.interner.get(fp(2)).unwrap();
        let row2 = s.left.row(id2);
        assert_eq!(row2.len(), 1);
        assert_eq!(
            row2[0],
            DenseEntry {
                id: id1,
                count: 2,
                order: 1
            }
        );
        let row1 = s.left.row(id1);
        assert_eq!(
            row1[0],
            DenseEntry {
                id: id2,
                count: 1,
                order: 2
            }
        );
        let r1 = s.right.row(id1);
        assert_eq!(
            r1[0],
            DenseEntry {
                id: id2,
                count: 2,
                order: 0
            }
        );
    }

    #[test]
    fn key_order_policy_zeroes_orders() {
        let s = DenseStats::full_with_policy(&backup(&[1, 2, 1, 2]), TiePolicy::KeyOrder);
        for id in 0..s.unique_chunks() as u32 {
            for e in s.left.row(id).iter().chain(s.right.row(id)) {
                assert_eq!(e.order, 0);
            }
        }
    }

    #[test]
    fn boundary_chunks_have_one_sided_rows() {
        let s = DenseStats::full(&backup(&[1, 2]));
        let id1 = s.interner.get(fp(1)).unwrap();
        let id2 = s.interner.get(fp(2)).unwrap();
        assert!(s.left.row(id1).is_empty());
        assert!(s.right.row(id2).is_empty());
        assert_eq!(s.left.row(id2).len(), 1);
        assert_eq!(s.right.row(id1).len(), 1);
    }

    #[test]
    fn empty_and_singleton_backups() {
        let s = DenseStats::full(&backup(&[]));
        assert_eq!(s.unique_chunks(), 0);
        assert!(s.global_rows().is_empty());
        let s = DenseStats::full(&backup(&[42]));
        assert_eq!(s.unique_chunks(), 1);
        assert!(s.left.row(0).is_empty());
        assert!(s.right.row(0).is_empty());
    }

    #[test]
    fn to_chunk_stats_round_trips_paper_example() {
        // C = ⟨C1 C2 C5 C2 C1 C2 C3 C4 C2 C3 C4 C4⟩ (§4.2).
        let b = backup(&[1, 2, 5, 2, 1, 2, 3, 4, 2, 3, 4, 4]);
        let dense = DenseStats::full(&b).to_chunk_stats();
        let legacy = ChunkStats::full(&b);
        assert_eq!(dense.freq, legacy.freq);
        assert_eq!(dense.left, legacy.left);
        assert_eq!(dense.right, legacy.right);
        assert_eq!(dense.sizes, legacy.sizes);
    }

    #[test]
    fn frequencies_only_skips_csr() {
        let s = DenseStats::frequencies_only(&backup(&[1, 2, 1]));
        assert_eq!(s.freq[0], 2);
        assert_eq!(s.left.num_entries(), 0);
        assert_eq!(s.right.num_entries(), 0);
        assert_eq!(s.left.num_rows(), 2);
    }

    #[test]
    fn blocks_of_rounds_up() {
        let b = Backup::from_chunks(
            "t",
            vec![ChunkRecord::new(1u64, 17), ChunkRecord::new(2u64, 16)],
        );
        let s = DenseStats::full(&b);
        assert_eq!(s.blocks_of(s.interner.get(fp(1)).unwrap()), 2);
        assert_eq!(s.blocks_of(s.interner.get(fp(2)).unwrap()), 1);
    }
}
