//! The `COUNT` procedure shared by all attacks (Algorithms 1 and 2).
//!
//! Builds, in one pass over a backup's logical chunk sequence:
//!
//! * `F` — the frequency of every unique chunk;
//! * `L` — for every chunk, the co-occurrence counts of its **left**
//!   neighbours;
//! * `R` — the same for **right** neighbours;
//! * the observed size of every unique chunk (needed by the advanced
//!   attack's block-count classification).
//!
//! Tie-breaking faithfully mirrors the paper's LevelDB layout (§5.2), and it
//! matters enormously (the tie sensitivity §4.1 warns about):
//!
//! * the **global** frequency table is keyed by fingerprint, so iterating
//!   tied entries follows key order — effectively random with respect to
//!   stream alignment. Global entries therefore carry `order = 0` and fall
//!   back to the fingerprint comparison; this is why the basic attack
//!   collapses on tie-heavy workloads.
//! * **neighbour lists** are "sequential lists of the fingerprints of all
//!   the left/right neighbors" — insertion order, i.e. stream order. Chunk
//!   locality preserves local stream order across backup versions, so
//!   order-based ties keep the ciphertext and plaintext neighbour rankings
//!   *aligned* — this is what lets the locality crawl walk chains of
//!   once-occurring chunks.
//!
//! This module is the paper-faithful, fingerprint-keyed layout. The attack
//! hot path runs on the dense-id/CSR layer of [`crate::dense`], which
//! produces bit-identical statistics; [`ChunkStats`] remains the
//! compatibility surface for figure binaries and tests (and the baseline
//! the `perf_report` benchmark measures against).

use std::collections::HashMap;

use freqdedup_trace::{Backup, Fingerprint};

/// One frequency-table entry: occurrence count plus first-seen position.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FreqEntry {
    /// Number of occurrences.
    pub count: u64,
    /// Stream position of the first occurrence (tie-break key).
    pub order: u32,
}

/// A frequency table keyed by fingerprint.
pub type FreqTable = HashMap<Fingerprint, FreqEntry>;

/// Co-occurrence table of one chunk's neighbours on one side.
pub type NeighborCounts = FreqTable;

fn bump(table: &mut FreqTable, fp: Fingerprint, position: u32) {
    let entry = table.entry(fp).or_insert(FreqEntry {
        count: 0,
        order: position,
    });
    entry.count += 1;
}

/// Order value for global-table entries: constant, so ties fall through to
/// the fingerprint comparison (LevelDB key order).
const GLOBAL_ORDER: u32 = 0;

/// Cheap unique-chunk estimate used to pre-size the tables: the distinct
/// count of a small prefix sample, scaled to the full stream.
///
/// The old `len/2` heuristic massively over-allocated on high-dedup traces
/// (a backup with 1M logical but 50k unique chunks reserved half a million
/// slots in **four** maps). Sampling the first few thousand chunks bounds
/// the estimate by the observed dedup ratio instead; repeated growth stays
/// amortized O(n) if the sample underestimates.
fn unique_estimate(backup: &Backup) -> usize {
    const SAMPLE: usize = 2048;
    let n = backup.len();
    if n <= SAMPLE {
        return n;
    }
    let distinct = backup.chunks[..SAMPLE]
        .iter()
        .map(|rec| rec.fp)
        .collect::<std::collections::HashSet<_>>()
        .len();
    // Scale the sampled distinct ratio to the whole stream; duplicates are
    // usually *more* common later (re-seen chunks), so this over-estimates
    // mildly rather than wildly.
    (distinct * n) / SAMPLE
}

/// Tie-break policy for **neighbour** tables (the global table always uses
/// key order, like a fingerprint-keyed LevelDB).
///
/// The default, [`TiePolicy::StreamOrder`], mirrors the paper's sequential
/// neighbour lists. [`TiePolicy::KeyOrder`] breaks every tie by fingerprint
/// — an implementation an artifact could equally plausibly have; the
/// `ablation_tiebreak` experiment shows this single choice swings the
/// locality attack's inference rate by an order of magnitude, a concrete
/// instance of the tie sensitivity §4.1 warns about.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum TiePolicy {
    /// Neighbour ties break by first-occurrence stream position (sequential
    /// list order — the paper's data layout).
    #[default]
    StreamOrder,
    /// Neighbour ties break by fingerprint (key order everywhere).
    KeyOrder,
}

/// The output of `COUNT` for one backup.
#[derive(Clone, Debug, Default)]
pub struct ChunkStats {
    /// `F[X]` — occurrence count per unique chunk.
    pub freq: FreqTable,
    /// `L[X]` — left-neighbour co-occurrence counts per unique chunk.
    pub left: HashMap<Fingerprint, NeighborCounts>,
    /// `R[X]` — right-neighbour co-occurrence counts per unique chunk.
    pub right: HashMap<Fingerprint, NeighborCounts>,
    /// Observed size in bytes per unique chunk (sizes are deterministic per
    /// content, so the first observation is kept and equals every
    /// observation).
    pub sizes: HashMap<Fingerprint, u32>,
}

impl ChunkStats {
    /// Runs `COUNT` over a backup (frequencies only — cheaper; used by the
    /// basic attack).
    #[must_use]
    pub fn frequencies_only(backup: &Backup) -> Self {
        let cap = unique_estimate(backup);
        let mut stats = ChunkStats {
            freq: HashMap::with_capacity(cap),
            sizes: HashMap::with_capacity(cap),
            ..ChunkStats::default()
        };
        for rec in &backup.chunks {
            bump(&mut stats.freq, rec.fp, GLOBAL_ORDER);
            stats.sizes.entry(rec.fp).or_insert(rec.size);
        }
        stats
    }

    /// Runs the full `COUNT` of Algorithm 2 with the default
    /// [`TiePolicy::StreamOrder`].
    #[must_use]
    pub fn full(backup: &Backup) -> Self {
        Self::full_with_policy(backup, TiePolicy::StreamOrder)
    }

    /// Runs the full `COUNT` of Algorithm 2: frequencies plus left/right
    /// neighbour co-occurrence counts, with an explicit neighbour tie-break
    /// policy.
    #[must_use]
    pub fn full_with_policy(backup: &Backup, policy: TiePolicy) -> Self {
        let cap = unique_estimate(backup);
        let mut stats = ChunkStats {
            freq: HashMap::with_capacity(cap),
            left: HashMap::with_capacity(cap),
            right: HashMap::with_capacity(cap),
            sizes: HashMap::with_capacity(cap),
        };
        let chunks = &backup.chunks;
        for (i, rec) in chunks.iter().enumerate() {
            let order = match policy {
                TiePolicy::StreamOrder => i as u32,
                TiePolicy::KeyOrder => GLOBAL_ORDER,
            };
            bump(&mut stats.freq, rec.fp, GLOBAL_ORDER);
            stats.sizes.entry(rec.fp).or_insert(rec.size);
            if i > 0 {
                let left_fp = chunks[i - 1].fp;
                bump(stats.left.entry(rec.fp).or_default(), left_fp, order);
            }
            if i + 1 < chunks.len() {
                let right_fp = chunks[i + 1].fp;
                bump(stats.right.entry(rec.fp).or_default(), right_fp, order);
            }
        }
        stats
    }

    /// Number of unique chunks counted.
    #[must_use]
    pub fn unique_chunks(&self) -> usize {
        self.freq.len()
    }

    /// The left-neighbour counts of `fp`, if any.
    #[must_use]
    pub fn left_of(&self, fp: Fingerprint) -> Option<&NeighborCounts> {
        self.left.get(&fp)
    }

    /// The right-neighbour counts of `fp`, if any.
    #[must_use]
    pub fn right_of(&self, fp: Fingerprint) -> Option<&NeighborCounts> {
        self.right.get(&fp)
    }

    /// Size in 16-byte cipher blocks of a counted chunk (`ceil(size/16)`),
    /// the advanced attack's classification key. Returns `None` for unknown
    /// fingerprints.
    #[must_use]
    pub fn blocks_of(&self, fp: Fingerprint) -> Option<u32> {
        self.sizes.get(&fp).map(|s| s.div_ceil(16))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use freqdedup_trace::ChunkRecord;

    fn backup(fps: &[u64]) -> Backup {
        Backup::from_chunks("t", fps.iter().map(|&f| ChunkRecord::new(f, 8)).collect())
    }

    fn fp(v: u64) -> Fingerprint {
        Fingerprint(v)
    }

    #[test]
    fn frequencies() {
        let stats = ChunkStats::full(&backup(&[1, 2, 1, 1]));
        assert_eq!(stats.freq[&fp(1)].count, 3);
        assert_eq!(stats.freq[&fp(2)].count, 1);
        assert_eq!(stats.unique_chunks(), 2);
    }

    #[test]
    fn global_table_order_is_constant() {
        // Global ties fall back to fingerprint order (LevelDB key order).
        let stats = ChunkStats::full(&backup(&[9, 5, 9, 7]));
        assert_eq!(stats.freq[&fp(9)].order, 0);
        assert_eq!(stats.freq[&fp(5)].order, 0);
        assert_eq!(stats.freq[&fp(7)].order, 0);
    }

    #[test]
    fn neighbours_counted_per_occurrence() {
        // Sequence: 1 2 1 2 — chunk 2 has left neighbour 1 twice; chunk 1 has
        // left neighbour 2 once (the second occurrence of 1).
        let stats = ChunkStats::full(&backup(&[1, 2, 1, 2]));
        assert_eq!(stats.left_of(fp(2)).unwrap()[&fp(1)].count, 2);
        assert_eq!(stats.left_of(fp(1)).unwrap()[&fp(2)].count, 1);
        assert_eq!(stats.right_of(fp(1)).unwrap()[&fp(2)].count, 2);
        assert_eq!(stats.right_of(fp(2)).unwrap()[&fp(1)].count, 1);
    }

    #[test]
    fn neighbour_order_is_stream_position() {
        // 10's right neighbours: 20 first seen at position 1, 30 at 3.
        let stats = ChunkStats::full(&backup(&[10, 20, 10, 30]));
        let rn = stats.right_of(fp(10)).unwrap();
        assert!(rn[&fp(20)].order < rn[&fp(30)].order);
    }

    #[test]
    fn first_chunk_has_no_left_neighbour() {
        let stats = ChunkStats::full(&backup(&[1, 2]));
        assert!(stats.left_of(fp(1)).is_none());
        assert!(stats.right_of(fp(2)).is_none());
    }

    #[test]
    fn paper_example_neighbour_sets() {
        // The worked example of §4.2: C = ⟨C1 C2 C5 C2 C1 C2 C3 C4 C2 C3 C4 C4⟩.
        let stats = ChunkStats::full(&backup(&[1, 2, 5, 2, 1, 2, 3, 4, 2, 3, 4, 4]));
        let left2: Vec<u64> = {
            let mut v: Vec<u64> = stats.left_of(fp(2)).unwrap().keys().map(|f| f.0).collect();
            v.sort_unstable();
            v
        };
        assert_eq!(left2, vec![1, 4, 5], "L_C2 = {{C1, C4, C5}}");
        let right2: Vec<u64> = {
            let mut v: Vec<u64> = stats.right_of(fp(2)).unwrap().keys().map(|f| f.0).collect();
            v.sort_unstable();
            v
        };
        assert_eq!(right2, vec![1, 3, 5], "R_C2 = {{C1, C3, C5}}");
    }

    #[test]
    fn sizes_and_blocks() {
        let b = Backup::from_chunks(
            "t",
            vec![ChunkRecord::new(1u64, 17), ChunkRecord::new(2u64, 16)],
        );
        let stats = ChunkStats::full(&b);
        assert_eq!(stats.blocks_of(fp(1)), Some(2));
        assert_eq!(stats.blocks_of(fp(2)), Some(1));
        assert_eq!(stats.blocks_of(fp(9)), None);
    }

    #[test]
    fn frequencies_only_skips_neighbours() {
        let stats = ChunkStats::frequencies_only(&backup(&[1, 2, 1]));
        assert_eq!(stats.freq[&fp(1)].count, 2);
        assert!(stats.left.is_empty());
        assert!(stats.right.is_empty());
    }

    #[test]
    fn empty_backup() {
        let stats = ChunkStats::full(&backup(&[]));
        assert_eq!(stats.unique_chunks(), 0);
    }

    #[test]
    fn single_chunk_backup() {
        let stats = ChunkStats::full(&backup(&[42]));
        assert_eq!(stats.freq[&fp(42)].count, 1);
        assert!(stats.left_of(fp(42)).is_none());
        assert!(stats.right_of(fp(42)).is_none());
    }
}
