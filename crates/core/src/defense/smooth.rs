//! Partition-based frequency smoothing (the PFSE shape): partition the
//! frequency histogram, smooth within each partition.
//!
//! Frequency-smoothing encryption fights the attack at its root — the
//! adversary's ability to *rank* ciphertexts by frequency. Rather than
//! TED's single global threshold, the histogram is sorted by frequency
//! and cut into exponentially growing rank partitions: the hot head
//! lands in small partitions, the long unique tail in large ones. Within
//! partition `P`, every chunk `M` is split into
//! `k_M = ⌈f_M / max(m_P, s)⌉` ciphertext variants, where `m_P` is the
//! partition's *smallest* frequency — so after splitting, every variant
//! in the partition carries roughly `m_P` occurrences and members of a
//! partition become indistinguishable by frequency. Occurrences are
//! assigned **round-robin** (`i mod k_M`), which keeps the variant
//! frequencies balanced to within one and, as a side effect, chops any
//! repeated adjacency pattern into `k` interleaved sub-patterns.
//!
//! The global relax level `s` buys budget-compliance: it is the smallest
//! integer (found by binary search, deterministically) such that the
//! total variant count `Σ k_M` fits the configured storage-blowup
//! budget. `s = max(f)` always fits, so the search cannot fail; when the
//! budget allows `s = 1` the scheme smooths every partition perfectly.

use std::collections::HashMap;

use freqdedup_mle::trace_enc::{EncryptedBackup, GroundTruth};
use freqdedup_trace::{Backup, BackupSeries, ChunkRecord, Fingerprint};

use crate::defense::scheme::{variant_fp, DefenseError, DefenseScheme, KeyContext};

/// KDF domain for the smoothing splitting key.
const DOMAIN: &[u8] = b"freqdedup-pfse";

/// Largest supported partition count (the exponential rank layout uses
/// `2^partitions` weights).
const MAX_PARTITIONS: usize = 32;

/// Partition-based frequency-smoothing encryption under a storage-blowup
/// budget.
#[derive(Clone, Debug, PartialEq)]
pub struct PartitionSmoothing {
    partitions: usize,
    budget: f64,
}

impl PartitionSmoothing {
    /// Creates the scheme with `partitions` histogram partitions and a
    /// storage-blowup budget.
    ///
    /// # Errors
    ///
    /// [`DefenseError::ZeroPartitions`] for `partitions == 0`,
    /// [`DefenseError::TooManyPartitions`] beyond the supported ceiling,
    /// [`DefenseError::BudgetBelowOne`] when `budget` is below 1.0 or not
    /// finite.
    pub fn new(partitions: usize, budget: f64) -> Result<Self, DefenseError> {
        if partitions == 0 {
            return Err(DefenseError::ZeroPartitions);
        }
        if partitions > MAX_PARTITIONS {
            return Err(DefenseError::TooManyPartitions {
                partitions,
                ceiling: MAX_PARTITIONS,
            });
        }
        if !budget.is_finite() || budget < 1.0 {
            return Err(DefenseError::BudgetBelowOne { budget });
        }
        Ok(PartitionSmoothing { partitions, budget })
    }

    /// The configured partition count.
    #[must_use]
    pub fn partitions(&self) -> usize {
        self.partitions
    }

    /// The configured storage-blowup budget.
    #[must_use]
    pub fn budget(&self) -> f64 {
        self.budget
    }

    /// The per-chunk variant counts `k_M` for this histogram: partition
    /// the rank-sorted histogram exponentially, smooth each chunk down to
    /// its partition floor, then relax globally until the budget fits.
    /// Fully deterministic — ties in frequency are broken by fingerprint.
    fn variant_counts(&self, freqs: &HashMap<Fingerprint, u64>) -> HashMap<Fingerprint, u64> {
        let mut ranked: Vec<(Fingerprint, u64)> = freqs.iter().map(|(&fp, &f)| (fp, f)).collect();
        ranked.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        let unique = ranked.len();

        // Exponential rank boundaries: partition p covers ranks
        // [U·(2^p - 1)/(2^P - 1), U·(2^(p+1) - 1)/(2^P - 1)), so each
        // partition is twice as wide as the previous and the hot head is
        // isolated in the narrow first partitions.
        let total_weight = (1u128 << self.partitions) - 1;
        let boundary = |p: usize| -> usize {
            let w = (1u128 << p) - 1;
            ((unique as u128 * w) / total_weight) as usize
        };
        // Per-rank partition floor m_P (the partition's smallest freq).
        let mut floor = vec![1u64; unique];
        for p in 0..self.partitions {
            let (start, end) = (boundary(p), boundary(p + 1));
            if start >= end {
                continue;
            }
            let m = ranked[end - 1].1.max(1);
            for f in &mut floor[start..end] {
                *f = m;
            }
        }

        let cap = self.budget * unique as f64;
        let total_for = |s: u64| -> u64 {
            ranked
                .iter()
                .zip(&floor)
                .map(|(&(_, f), &m)| f.div_ceil(m.max(s)))
                .sum()
        };
        // Smallest relax level whose variant total fits the budget: the
        // total is non-increasing in s, and s = max(f) collapses every
        // chunk to one variant, which always fits (budget >= 1).
        let mut s = 1u64;
        if total_for(s) as f64 > cap {
            let mut lo = 1u64;
            let mut hi = ranked.first().map_or(1, |&(_, f)| f);
            while hi - lo > 1 {
                let mid = lo + (hi - lo) / 2;
                if total_for(mid) as f64 <= cap {
                    hi = mid;
                } else {
                    lo = mid;
                }
            }
            s = hi;
        }

        ranked
            .into_iter()
            .zip(&floor)
            .map(|((fp, f), &m)| (fp, f.div_ceil(m.max(s))))
            .collect()
    }

    /// Encrypts a group of backups as one unit: one shared histogram, one
    /// relax level, occurrence counters running across the unit.
    fn encrypt_unit(&self, backups: &[&Backup], ctx: &KeyContext) -> (Vec<Backup>, GroundTruth) {
        let mut freqs: HashMap<Fingerprint, u64> = HashMap::new();
        for backup in backups {
            for rec in backup.iter() {
                *freqs.entry(rec.fp).or_insert(0) += 1;
            }
        }
        let mut truth = GroundTruth::new();
        if freqs.is_empty() {
            let out = backups
                .iter()
                .map(|b| Backup::new(b.label.clone()))
                .collect();
            return (out, truth);
        }
        let variants = self.variant_counts(&freqs);
        let key = ctx.split_key(DOMAIN);
        let mut seen: HashMap<Fingerprint, u64> = HashMap::with_capacity(freqs.len());
        let mut out = Vec::with_capacity(backups.len());
        for backup in backups {
            let mut enc = Backup::new(backup.label.clone());
            for rec in backup.iter() {
                let k = variants[&rec.fp];
                let count = seen.entry(rec.fp).or_insert(0);
                let cipher = variant_fp(&key, rec.fp, *count % k);
                *count += 1;
                truth.record(cipher, rec.fp);
                enc.push(ChunkRecord::new(cipher, rec.size));
            }
            out.push(enc);
        }
        (out, truth)
    }
}

impl DefenseScheme for PartitionSmoothing {
    fn name(&self) -> &'static str {
        "smooth"
    }

    fn encrypt_backup(&self, plain: &Backup, ctx: &KeyContext) -> EncryptedBackup {
        let (mut backups, truth) = self.encrypt_unit(&[plain], ctx);
        EncryptedBackup {
            backup: backups.pop().expect("one input, one output"),
            truth,
        }
    }

    fn encrypt_series(
        &self,
        series: &BackupSeries,
        ctx: &KeyContext,
    ) -> (BackupSeries, GroundTruth) {
        let refs: Vec<&Backup> = series.iter().collect();
        let (backups, truth) = self.encrypt_unit(&refs, ctx);
        let mut out = BackupSeries::new(series.name.clone());
        for b in backups {
            out.push(b);
        }
        (out, truth)
    }

    fn blowup_budget(&self) -> Option<f64> {
        Some(self.budget)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn zipfish(n: usize, seed: u64) -> Backup {
        // A crudely Zipf-like head (chunk id i appears ~1000/i times)
        // followed by a long unique tail.
        let mut chunks = Vec::with_capacity(n);
        for id in 1u64..=64 {
            for _ in 0..(1000 / id).max(1) {
                chunks.push(ChunkRecord::new(Fingerprint(id), 8192));
            }
        }
        let mut x = seed | 1;
        while chunks.len() < n {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            chunks.push(ChunkRecord::new(Fingerprint(x | (1 << 63)), 8192));
        }
        chunks.truncate(n);
        Backup::from_chunks("b", chunks)
    }

    fn measured_blowup(enc: &EncryptedBackup, plain: &Backup) -> f64 {
        enc.backup.unique_fingerprints().len() as f64 / plain.unique_fingerprints().len() as f64
    }

    #[test]
    fn constructor_rejects_bad_params() {
        assert!(matches!(
            PartitionSmoothing::new(0, 2.0),
            Err(DefenseError::ZeroPartitions)
        ));
        assert!(matches!(
            PartitionSmoothing::new(64, 2.0),
            Err(DefenseError::TooManyPartitions { .. })
        ));
        assert!(matches!(
            PartitionSmoothing::new(8, 0.5),
            Err(DefenseError::BudgetBelowOne { .. })
        ));
        assert!(PartitionSmoothing::new(8, 1.5).is_ok());
    }

    #[test]
    fn budget_is_respected() {
        let plain = zipfish(30_000, 3);
        let ctx = KeyContext::new(b"secret", 1);
        for budget in [1.0, 1.25, 1.5, 2.0] {
            let scheme = PartitionSmoothing::new(8, budget).unwrap();
            let enc = scheme.encrypt_backup(&plain, &ctx);
            let blowup = measured_blowup(&enc, &plain);
            assert!(
                blowup <= budget + 1e-9,
                "budget {budget} exceeded: measured {blowup}"
            );
        }
    }

    #[test]
    fn head_frequencies_are_smoothed() {
        let plain = zipfish(30_000, 3);
        let ctx = KeyContext::new(b"secret", 1);
        let scheme = PartitionSmoothing::new(8, 2.0).unwrap();
        let enc = scheme.encrypt_backup(&plain, &ctx);
        let mut plain_freqs: HashMap<Fingerprint, u64> = HashMap::new();
        for rec in plain.iter() {
            *plain_freqs.entry(rec.fp).or_insert(0) += 1;
        }
        let mut cipher_freqs: HashMap<Fingerprint, u64> = HashMap::new();
        for rec in enc.backup.iter() {
            *cipher_freqs.entry(rec.fp).or_insert(0) += 1;
        }
        let plain_max = plain_freqs.values().copied().max().unwrap();
        let cipher_max = cipher_freqs.values().copied().max().unwrap();
        assert!(
            cipher_max * 4 <= plain_max,
            "head not smoothed: {cipher_max} vs {plain_max}"
        );
    }

    #[test]
    fn round_robin_balances_variants() {
        // One chunk with frequency 10 and enough budget for 5 variants:
        // each variant must carry exactly 2 occurrences.
        let chunks: Vec<ChunkRecord> = (0..10).map(|_| ChunkRecord::new(1u64, 8)).collect();
        let plain = Backup::from_chunks("b", chunks);
        let ctx = KeyContext::new(b"secret", 1);
        let scheme = PartitionSmoothing::new(1, 10.0).unwrap();
        let enc = scheme.encrypt_backup(&plain, &ctx);
        let mut freqs: HashMap<Fingerprint, u64> = HashMap::new();
        for rec in enc.backup.iter() {
            *freqs.entry(rec.fp).or_insert(0) += 1;
        }
        // Partition floor is 10 (only member), so k = 1 under s=1 — with a
        // single partition the floor equals the chunk's own frequency and
        // no splitting is needed to make members indistinguishable.
        assert_eq!(freqs.len(), 1);
        // Two chunks with different frequencies in one partition: the
        // hotter one splits down to the colder's frequency.
        let mut chunks: Vec<ChunkRecord> = (0..12).map(|_| ChunkRecord::new(1u64, 8)).collect();
        chunks.extend((0..3).map(|_| ChunkRecord::new(2u64, 8)));
        let plain = Backup::from_chunks("b", chunks);
        let enc = scheme.encrypt_backup(&plain, &ctx);
        let mut freqs: HashMap<Fingerprint, u64> = HashMap::new();
        for rec in enc.backup.iter() {
            *freqs.entry(rec.fp).or_insert(0) += 1;
        }
        // k for the hot chunk = ceil(12/3) = 4, each variant carries 3 —
        // indistinguishable from the cold chunk's single ciphertext.
        assert_eq!(freqs.len(), 5);
        assert!(freqs.values().all(|&f| f == 3));
    }

    #[test]
    fn truth_resolves_and_sizes_preserved() {
        let plain = zipfish(8000, 11);
        let ctx = KeyContext::new(b"secret", 1);
        let enc = PartitionSmoothing::new(8, 1.5)
            .unwrap()
            .encrypt_backup(&plain, &ctx);
        assert_eq!(enc.backup.len(), plain.len());
        for (p, c) in plain.iter().zip(enc.backup.iter()) {
            assert_eq!(p.size, c.size);
            assert_eq!(enc.truth.plain_of(c.fp), Some(p.fp));
        }
    }

    #[test]
    fn deterministic_per_context_distinct_per_seed() {
        let plain = zipfish(5000, 5);
        let scheme = PartitionSmoothing::new(8, 1.5).unwrap();
        let a = scheme.encrypt_backup(&plain, &KeyContext::new(b"s", 1));
        let b = scheme.encrypt_backup(&plain, &KeyContext::new(b"s", 1));
        let c = scheme.encrypt_backup(&plain, &KeyContext::new(b"s", 2));
        assert_eq!(a.backup, b.backup);
        assert_ne!(a.backup, c.backup);
    }

    #[test]
    fn series_budget_holds_across_backups() {
        let b0 = zipfish(10_000, 9);
        let mut b1 = zipfish(10_000, 9);
        b1.label = "b2".into();
        let mut series = BackupSeries::new("s");
        let plain_unique = {
            let mut set = b0.unique_fingerprints();
            set.extend(b1.unique_fingerprints());
            set.len()
        };
        series.push(b0);
        series.push(b1);
        let scheme = PartitionSmoothing::new(8, 1.5).unwrap();
        let (enc, truth) = scheme.encrypt_series(&series, &KeyContext::new(b"secret", 1));
        let mut cipher_unique = std::collections::HashSet::new();
        for b in &enc {
            for rec in b {
                assert!(truth.plain_of(rec.fp).is_some());
                cipher_unique.insert(rec.fp);
            }
        }
        let blowup = cipher_unique.len() as f64 / plain_unique as f64;
        assert!(blowup <= 1.5 + 1e-9, "series blowup {blowup} over budget");
    }

    #[test]
    fn empty_backup_is_fine() {
        let plain = Backup::new("empty");
        let ctx = KeyContext::new(b"secret", 1);
        let enc = PartitionSmoothing::new(8, 2.0)
            .unwrap()
            .encrypt_backup(&plain, &ctx);
        assert_eq!(enc.backup.len(), 0);
    }
}
