//! Scrambling (Algorithm 5, §6.2): break chunk locality by randomly
//! shuffling the chunk order **within each segment** before encryption.
//!
//! Each chunk of a segment is pushed to either the front or the back of the
//! output deque with a fair coin flip, as in the paper's pseudo-code. The
//! original file order is recoverable from the (conventionally encrypted)
//! file recipe, so scrambling costs no information for legitimate clients,
//! and because it stays within segments — which are smaller than storage
//! containers — its impact on the physical chunk layout is limited (§6.2).

use std::collections::VecDeque;

use freqdedup_chunking::segment::{segment_spans, SegmentParams};
use freqdedup_crypto::hmac;
use freqdedup_mle::trace_enc::{DeterministicTraceEncryptor, EncryptedBackup};
use freqdedup_trace::{Backup, ChunkRecord};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::defense::scheme::{DefenseScheme, KeyContext};

/// Scrambles one segment with the supplied RNG (Algorithm 5 lines 5–13).
pub(crate) fn scramble_segment(chunks: &[ChunkRecord], rng: &mut impl Rng) -> Vec<ChunkRecord> {
    let mut out: VecDeque<ChunkRecord> = VecDeque::with_capacity(chunks.len());
    for &chunk in chunks {
        if rng.gen::<u32>() & 1 == 1 {
            out.push_front(chunk);
        } else {
            out.push_back(chunk);
        }
    }
    out.into()
}

/// Per-segment scrambler over fingerprint traces.
#[derive(Clone, Debug)]
pub struct Scrambler {
    params: SegmentParams,
    seed: u64,
}

impl Scrambler {
    /// Creates a scrambler; `seed` makes runs reproducible. Each backup is
    /// scrambled with an independent stream derived from the seed and the
    /// backup label.
    #[must_use]
    pub fn new(params: SegmentParams, seed: u64) -> Self {
        Scrambler { params, seed }
    }

    /// Scrambles a backup segment by segment, returning the new plaintext
    /// chunk order (encryption happens afterwards).
    #[must_use]
    pub fn scramble_backup(&self, plain: &Backup) -> Backup {
        let mut rng = self.rng_for(&plain.label);
        let spans = segment_spans(&plain.chunks, &self.params);
        let mut out = Backup::new(plain.label.clone());
        for span in spans {
            out.extend(scramble_segment(&plain.chunks[span], &mut rng));
        }
        out
    }

    /// Derives the per-backup RNG: independent per label, stable per seed.
    #[must_use]
    pub fn rng_for(&self, label: &str) -> ChaCha8Rng {
        let stream = hmac::hmac_u64(&self.seed.to_le_bytes(), label.as_bytes());
        ChaCha8Rng::seed_from_u64(stream)
    }
}

/// Scrambling as a standalone defense scheme: per-segment chunk-order
/// scrambling (Algorithm 5, seeded from the [`KeyContext`]) followed by
/// plain deterministic MLE under the context secret. Breaks chunk
/// *locality* while leaving the frequency distribution — and therefore
/// the dedup ratio — exactly as deterministic encryption would
/// (blowup 1.0): the pure anti-locality point of the design space.
#[derive(Clone, Debug)]
pub struct ScrambleScheme {
    params: SegmentParams,
}

impl ScrambleScheme {
    /// Creates the scheme with the given segmentation parameters.
    #[must_use]
    pub fn new(params: SegmentParams) -> Self {
        ScrambleScheme { params }
    }

    /// The segmentation parameters.
    #[must_use]
    pub fn params(&self) -> &SegmentParams {
        &self.params
    }
}

impl DefenseScheme for ScrambleScheme {
    fn name(&self) -> &'static str {
        "scramble"
    }

    fn encrypt_backup(&self, plain: &Backup, ctx: &KeyContext) -> EncryptedBackup {
        let scrambler = Scrambler::new(self.params.clone(), ctx.seed());
        let scrambled = scrambler.scramble_backup(plain);
        DeterministicTraceEncryptor::new(ctx.secret()).encrypt_backup(&scrambled)
    }

    fn blowup_budget(&self) -> Option<f64> {
        Some(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use freqdedup_trace::Fingerprint;

    fn stream(n: usize, seed: u64) -> Backup {
        let mut x = seed | 1;
        Backup::from_chunks(
            "label",
            (0..n)
                .map(|_| {
                    x = x
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    ChunkRecord::new(Fingerprint(x), 8192)
                })
                .collect(),
        )
    }

    #[test]
    fn scramble_is_permutation_of_segment() {
        let chunks: Vec<ChunkRecord> = (0..100u64)
            .map(|i| ChunkRecord::new(Fingerprint(i), 8))
            .collect();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let out = scramble_segment(&chunks, &mut rng);
        assert_eq!(out.len(), chunks.len());
        let mut a: Vec<u64> = chunks.iter().map(|c| c.fp.value()).collect();
        let mut b: Vec<u64> = out.iter().map(|c| c.fp.value()).collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn scramble_actually_reorders() {
        let chunks: Vec<ChunkRecord> = (0..100u64)
            .map(|i| ChunkRecord::new(Fingerprint(i), 8))
            .collect();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let out = scramble_segment(&chunks, &mut rng);
        assert_ne!(out, chunks, "100 coin flips all tails is impossible-ish");
    }

    #[test]
    fn backup_scramble_is_per_segment_permutation() {
        let plain = stream(5000, 9);
        let scrambler = Scrambler::new(SegmentParams::default(), 42);
        let scrambled = scrambler.scramble_backup(&plain);
        assert_eq!(scrambled.len(), plain.len());
        // Global multiset unchanged.
        let mut a: Vec<u64> = plain.iter().map(|c| c.fp.value()).collect();
        let mut b: Vec<u64> = scrambled.iter().map(|c| c.fp.value()).collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
        // Per-segment multiset unchanged (segments computed on the original).
        let spans = segment_spans(&plain.chunks, &SegmentParams::default());
        for span in spans {
            let mut x: Vec<u64> = plain.chunks[span.clone()]
                .iter()
                .map(|c| c.fp.value())
                .collect();
            let mut y: Vec<u64> = scrambled.chunks[span]
                .iter()
                .map(|c| c.fp.value())
                .collect();
            x.sort_unstable();
            y.sort_unstable();
            assert_eq!(x, y);
        }
    }

    #[test]
    fn deterministic_per_seed_and_label() {
        let plain = stream(2000, 9);
        let s1 = Scrambler::new(SegmentParams::default(), 42);
        let s2 = Scrambler::new(SegmentParams::default(), 42);
        assert_eq!(s1.scramble_backup(&plain), s2.scramble_backup(&plain));
        let s3 = Scrambler::new(SegmentParams::default(), 43);
        assert_ne!(s1.scramble_backup(&plain), s3.scramble_backup(&plain));
    }

    #[test]
    fn different_labels_scramble_differently() {
        let a = stream(2000, 9);
        let mut b = a.clone();
        b.label = "other".into();
        let scrambler = Scrambler::new(SegmentParams::default(), 42);
        let sa = scrambler.scramble_backup(&a);
        let sb = scrambler.scramble_backup(&b);
        let fa: Vec<u64> = sa.iter().map(|c| c.fp.value()).collect();
        let fb: Vec<u64> = sb.iter().map(|c| c.fp.value()).collect();
        assert_ne!(fa, fb);
    }

    #[test]
    fn scrambling_destroys_most_adjacency() {
        // Algorithm 5's front/back coin flip keeps a pair adjacent (in
        // order) only when both chunks flip "back" (probability 1/4), so
        // ordered-adjacency overlap with the original drops from 1.0 to
        // about 0.25.
        let plain = stream(20_000, 5);
        let scrambler = Scrambler::new(SegmentParams::default(), 1);
        let scrambled = scrambler.scramble_backup(&plain);
        let overlap = freqdedup_trace::stats::locality_overlap(&plain, &scrambled);
        assert!(
            (0.15..0.35).contains(&overlap),
            "adjacency overlap {overlap} outside the coin-flip band"
        );
    }

    #[test]
    fn empty_and_singleton() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        assert!(scramble_segment(&[], &mut rng).is_empty());
        let one = [ChunkRecord::new(Fingerprint(1), 8)];
        assert_eq!(scramble_segment(&one, &mut rng), one.to_vec());
    }
}
