//! Defenses against frequency analysis, behind one pluggable contract.
//!
//! The [`DefenseScheme`] trait (see [`scheme`]) is the object-safe
//! interface every countermeasure implements; the harness, the client
//! upload path and the `tournament` driver select schemes at runtime.
//! Implementations, from "no defense" to the paper's recommended
//! configuration and beyond:
//!
//! * [`NoDefense`] — plain deterministic MLE, the test-pinned baseline.
//! * [`MinHashEncryption`] — segment-minimum-derived keys (Algorithm 4,
//!   §6.1): disturbs the ciphertext frequency ranking.
//! * [`ScrambleScheme`] — per-segment order scrambling (Algorithm 5,
//!   §6.2) followed by deterministic MLE: breaks locality only.
//! * [`MinHashScrambleScheme`] — the combined §7.1 pipeline (the paper's
//!   recommended defense; formerly the concrete `DefenseScheme` struct).
//! * [`TedScheme`] — tunable encrypted dedup: splits hot fingerprints
//!   across `⌈f/t⌉` ciphertexts under a storage-blowup budget.
//! * [`PartitionSmoothing`] — PFSE-shaped frequency smoothing: partition
//!   the histogram, smooth within partitions, relax to the budget.
//!
//! Import `defense::prelude::*` for the whole surface.

pub mod combined;
pub mod minhash;
pub mod scheme;
pub mod scramble;
pub mod smooth;
pub mod ted;

pub use combined::MinHashScrambleScheme;
pub use minhash::MinHashEncryption;
pub use scheme::{DefenseError, DefenseScheme, KeyContext, NoDefense};
pub use scramble::{ScrambleScheme, Scrambler};
pub use smooth::PartitionSmoothing;
pub use ted::TedScheme;

/// One-stop import for working with defenses: the trait, its key
/// context and error type, and every shipped scheme.
pub mod prelude {
    pub use super::combined::MinHashScrambleScheme;
    pub use super::minhash::MinHashEncryption;
    pub use super::scheme::{DefenseError, DefenseScheme, KeyContext, NoDefense};
    pub use super::scramble::{ScrambleScheme, Scrambler};
    pub use super::smooth::PartitionSmoothing;
    pub use super::ted::TedScheme;
}
