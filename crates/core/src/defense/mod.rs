//! Defenses against frequency analysis (§6): MinHash encryption, scrambling,
//! and their combination.

pub mod combined;
pub mod minhash;
pub mod scramble;

pub use combined::DefenseScheme;
pub use minhash::MinHashEncryption;
pub use scramble::Scrambler;
