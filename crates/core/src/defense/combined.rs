//! The combined MinHash-encryption + scrambling scheme (§6, §7.1) — the
//! paper's recommended defense configuration.
//!
//! Pipeline per backup (exactly §7.1): segment the original chunk stream →
//! scramble the chunk order within each segment → compute each segment's
//! minimum fingerprint `h` (unchanged by scrambling) → encrypt every chunk
//! of the segment under `h`.

use freqdedup_chunking::segment::{segment_spans, SegmentParams};
use freqdedup_mle::trace_enc::{EncryptedBackup, GroundTruth};
use freqdedup_trace::{Backup, BackupSeries, ChunkRecord};

use crate::defense::minhash::{segment_min, MinHashEncryption};
use crate::defense::scheme::{DefenseScheme, KeyContext};
use crate::defense::scramble::{scramble_segment, Scrambler};

/// A defense configuration: MinHash encryption with optional scrambling.
#[derive(Clone, Debug)]
pub struct MinHashScrambleScheme {
    params: SegmentParams,
    scrambler: Option<Scrambler>,
}

impl MinHashScrambleScheme {
    /// MinHash encryption only (no scrambling).
    #[must_use]
    pub fn minhash_only(params: SegmentParams) -> Self {
        MinHashScrambleScheme {
            params,
            scrambler: None,
        }
    }

    /// The combined scheme: MinHash encryption plus per-segment scrambling
    /// seeded with `seed`.
    #[must_use]
    pub fn combined(params: SegmentParams, seed: u64) -> Self {
        MinHashScrambleScheme {
            scrambler: Some(Scrambler::new(params.clone(), seed)),
            params,
        }
    }

    /// Whether scrambling is enabled.
    #[must_use]
    pub fn scrambles(&self) -> bool {
        self.scrambler.is_some()
    }

    /// The segmentation parameters.
    #[must_use]
    pub fn params(&self) -> &SegmentParams {
        &self.params
    }

    /// Encrypts one backup with the configured defense, producing the
    /// adversary-visible ciphertext stream and the scoring ground truth.
    #[must_use]
    pub fn encrypt_backup(&self, plain: &Backup) -> EncryptedBackup {
        let spans = segment_spans(&plain.chunks, &self.params);
        let mut rng = self.scrambler.as_ref().map(|s| s.rng_for(&plain.label));
        let mut out = Backup::new(plain.label.clone());
        let mut truth = GroundTruth::new();
        for span in spans {
            let original = &plain.chunks[span];
            let h = segment_min(original);
            let segment: Vec<ChunkRecord> = match &mut rng {
                Some(rng) => scramble_segment(original, rng),
                None => original.to_vec(),
            };
            for rec in segment {
                let cipher = MinHashEncryption::encrypt_fp(h, rec.fp);
                truth.record(cipher, rec.fp);
                out.push(ChunkRecord::new(cipher, rec.size));
            }
        }
        EncryptedBackup { backup: out, truth }
    }

    /// Encrypts a whole series, merging the per-backup ground truths —
    /// the input to the storage-efficiency evaluation (Fig. 11).
    #[must_use]
    pub fn encrypt_series(&self, series: &BackupSeries) -> (BackupSeries, GroundTruth) {
        let mut out = BackupSeries::new(series.name.clone());
        let mut truth = GroundTruth::new();
        for backup in series {
            let enc = self.encrypt_backup(backup);
            truth.merge(&enc.truth);
            out.push(enc.backup);
        }
        (out, truth)
    }
}

impl DefenseScheme for MinHashScrambleScheme {
    fn name(&self) -> &'static str {
        if self.scrambles() {
            "minhash-scramble"
        } else {
            "minhash"
        }
    }

    /// The combined scheme keys off segment minima and its own
    /// constructor seed (the paper-figure configuration predates the
    /// [`KeyContext`]), so the context is unused; determinism in
    /// `(self, plain)` satisfies the trait contract.
    fn encrypt_backup(&self, plain: &Backup, _ctx: &KeyContext) -> EncryptedBackup {
        self.encrypt_backup(plain)
    }

    fn encrypt_series(
        &self,
        series: &BackupSeries,
        _ctx: &KeyContext,
    ) -> (BackupSeries, GroundTruth) {
        self.encrypt_series(series)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use freqdedup_trace::{stats, Fingerprint};

    fn stream(n: usize, seed: u64) -> Backup {
        let mut x = seed | 1;
        Backup::from_chunks(
            "b",
            (0..n)
                .map(|_| {
                    x = x
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    ChunkRecord::new(Fingerprint(x), 8192)
                })
                .collect(),
        )
    }

    #[test]
    fn combined_preserves_chunk_multiset_sizes() {
        let plain = stream(5000, 3);
        let scheme = MinHashScrambleScheme::combined(SegmentParams::default(), 7);
        let enc = scheme.encrypt_backup(&plain);
        assert_eq!(enc.backup.len(), plain.len());
        assert_eq!(enc.backup.logical_bytes(), plain.logical_bytes());
    }

    #[test]
    fn truth_resolves_every_ciphertext() {
        let plain = stream(3000, 5);
        let scheme = MinHashScrambleScheme::combined(SegmentParams::default(), 7);
        let enc = scheme.encrypt_backup(&plain);
        // Every output chunk must decode to a plaintext fingerprint that
        // occurs in the original backup.
        let plain_set = plain.unique_fingerprints();
        for rec in &enc.backup {
            let m = enc.truth.plain_of(rec.fp).expect("truth covers output");
            assert!(plain_set.contains(&m));
        }
    }

    #[test]
    fn minhash_only_keeps_order_combined_does_not() {
        let plain = stream(5000, 9);
        let mh =
            MinHashScrambleScheme::minhash_only(SegmentParams::default()).encrypt_backup(&plain);
        let cb =
            MinHashScrambleScheme::combined(SegmentParams::default(), 1).encrypt_backup(&plain);
        // MinHash-only: i-th ciphertext decodes to i-th plaintext.
        for (p, c) in plain.iter().zip(mh.backup.iter()) {
            assert_eq!(mh.truth.plain_of(c.fp), Some(p.fp));
        }
        // Combined: the decoded stream is a reordering.
        let decoded: Vec<Fingerprint> = cb
            .backup
            .iter()
            .map(|c| cb.truth.plain_of(c.fp).unwrap())
            .collect();
        let original: Vec<Fingerprint> = plain.iter().map(|p| p.fp).collect();
        assert_ne!(decoded, original);
        let mut a = decoded.clone();
        let mut b = original.clone();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b, "scramble is a permutation");
    }

    #[test]
    fn dedup_preserved_across_identical_backups() {
        // Identical content in consecutive backups must still deduplicate
        // fully: same segments → same h → same ciphertexts.
        let mut series = BackupSeries::new("s");
        let b0 = stream(10_000, 21);
        let mut b1 = b0.clone();
        b1.label = "b2".into();
        series.push(b0);
        series.push(b1);
        let scheme = MinHashScrambleScheme::combined(SegmentParams::default(), 5);
        let (enc_series, _) = scheme.encrypt_series(&series);
        let ratio = stats::dedup_ratio(&enc_series);
        assert!(ratio > 1.95, "dedup ratio {ratio} — minhash broke dedup");
    }

    #[test]
    fn storage_loss_versus_plain_mle_is_small() {
        // A realistic versioned pair: second backup has clustered edits.
        let b0 = stream(30_000, 33);
        let mut b1 = b0.clone();
        b1.label = "b2".into();
        for i in (1000..1100).chain(17_000..17_080) {
            b1.chunks[i] = ChunkRecord::new(Fingerprint(1 << 62 | i as u64), 8192);
        }
        let mut series = BackupSeries::new("s");
        series.push(b0);
        series.push(b1);

        // Plain MLE storage saving (chunk-exact dedup on plaintext fps).
        let mle_saving = {
            let mut acc = stats::DedupAccumulator::new();
            for b in &series {
                acc.add_backup(b);
            }
            acc.storage_saving()
        };
        let scheme = MinHashScrambleScheme::combined(SegmentParams::default(), 5);
        let (enc_series, _) = scheme.encrypt_series(&series);
        let combined_saving = {
            let mut acc = stats::DedupAccumulator::new();
            for b in &enc_series {
                acc.add_backup(b);
            }
            acc.storage_saving()
        };
        assert!(
            mle_saving - combined_saving < 0.06,
            "saving dropped from {mle_saving} to {combined_saving}"
        );
    }

    #[test]
    fn scrambling_breaks_locality_in_ciphertext_space() {
        let b0 = stream(20_000, 44);
        let mut b1 = b0.clone();
        b1.label = "b2".into();
        let mh = MinHashScrambleScheme::minhash_only(SegmentParams::default());
        let cb = MinHashScrambleScheme::combined(SegmentParams::default(), 5);
        // MinHash-only ciphertext streams of two identical backups keep
        // adjacency; combined does not.
        let m0 = mh.encrypt_backup(&b0).backup;
        let m1 = mh.encrypt_backup(&b1).backup;
        assert!(stats::locality_overlap(&m0, &m1) > 0.95);
        // Two *independently* scrambled versions share an adjacent ordered
        // pair only when the pair survived both coin-flip scrambles
        // (~1/4 each, ~1/8–1/16 jointly).
        let c0 = cb.encrypt_backup(&b0).backup;
        let c1 = cb.encrypt_backup(&b1).backup;
        assert!(
            stats::locality_overlap(&c0, &c1) < 0.20,
            "combined scheme left locality intact"
        );
    }

    #[test]
    fn series_truth_merged() {
        let mut series = BackupSeries::new("s");
        series.push(stream(1000, 1));
        let mut b2 = stream(1000, 2);
        b2.label = "b2".into();
        series.push(b2);
        let scheme = MinHashScrambleScheme::minhash_only(SegmentParams::default());
        let (enc, truth) = scheme.encrypt_series(&series);
        for b in &enc {
            for rec in b {
                assert!(truth.plain_of(rec.fp).is_some());
            }
        }
    }
}
