//! The pluggable defense contract: one object-safe trait every
//! frequency-analysis countermeasure implements, so the attack harness,
//! the client upload path and the tournament driver can treat "which
//! defense is deployed" as runtime data.
//!
//! A [`DefenseScheme`] maps a plaintext fingerprint stream to the
//! adversary-visible ciphertext stream, given a [`KeyContext`] (the MLE
//! secret plus a determinism seed). The contract, pinned by the
//! `defense_contract` integration suite:
//!
//! * **Deterministic** — `encrypt_backup` is a pure function of
//!   `(self, plain, ctx)`; [`DefenseScheme::encrypt_backup_par`] is
//!   bit-identical to it at every thread count, like every other
//!   parallel stage in this workspace.
//! * **Lossless** — the returned [`GroundTruth`] resolves every output
//!   ciphertext to its plaintext, chunk sizes are preserved, and the
//!   output is a per-backup permutation-with-renaming of the input
//!   (legitimate clients recover byte-exact data via their file recipe).
//! * **Budgeted** — schemes that deliberately split one plaintext into
//!   several ciphertexts ([`crate::defense::TedScheme`],
//!   [`crate::defense::PartitionSmoothing`]) advertise their configured
//!   storage-blowup ceiling via [`DefenseScheme::blowup_budget`] and
//!   never exceed it (unique ciphertexts / unique plaintexts).
//!
//! [`NoDefense`] is the identity point of the design: plain
//! deterministic MLE under the context secret, test-pinned bit-identical
//! to the undefended pipeline so that "no defense selected" and "defense
//! layer absent" are provably the same observable stream.

use std::fmt;

use freqdedup_crypto::{hmac, kdf};
use freqdedup_mle::trace_enc::{DeterministicTraceEncryptor, EncryptedBackup, GroundTruth};
use freqdedup_trace::par::ParConfig;
use freqdedup_trace::{Backup, BackupSeries, Fingerprint};

/// Key material shared by every defense scheme: the system-wide MLE
/// secret (the adversary never learns it) and a seed that makes any
/// scheme-internal randomness — scramble coin flips, split-key
/// derivation — reproducible.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct KeyContext {
    secret: Vec<u8>,
    seed: u64,
}

impl KeyContext {
    /// Creates a context from the MLE secret and a determinism seed.
    #[must_use]
    pub fn new(secret: &[u8], seed: u64) -> Self {
        KeyContext {
            secret: secret.to_vec(),
            seed,
        }
    }

    /// The system-wide MLE secret.
    #[must_use]
    pub fn secret(&self) -> &[u8] {
        &self.secret
    }

    /// The determinism seed.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derives the 256-bit splitting key for ciphertext-splitting schemes
    /// (TED, partition smoothing), bound to the scheme's domain string,
    /// the secret and the seed.
    pub(crate) fn split_key(&self, domain: &'static [u8]) -> [u8; 32] {
        kdf::derive_key(domain, &self.secret, &self.seed.to_le_bytes())
    }
}

/// A constructor-time parameter violation, in the style of the chunking
/// layer's `ParamError`: the first violated constraint, typed, instead of
/// a panic deep inside an encrypt call.
#[derive(Clone, Debug, PartialEq)]
pub enum DefenseError {
    /// A storage-blowup budget below 1.0 (or non-finite) — the scheme
    /// cannot store fewer unique ciphertexts than unique plaintexts.
    BudgetBelowOne {
        /// Requested budget.
        budget: f64,
    },
    /// Zero histogram partitions requested.
    ZeroPartitions,
    /// More histogram partitions than the exponential layout supports.
    TooManyPartitions {
        /// Requested partition count.
        partitions: usize,
        /// Largest supported count.
        ceiling: usize,
    },
}

impl fmt::Display for DefenseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DefenseError::BudgetBelowOne { budget } => {
                write!(
                    f,
                    "storage-blowup budget {budget} must be finite and >= 1.0"
                )
            }
            DefenseError::ZeroPartitions => write!(f, "partition count must be non-zero"),
            DefenseError::TooManyPartitions {
                partitions,
                ceiling,
            } => write!(
                f,
                "partition count {partitions} exceeds the supported {ceiling}"
            ),
        }
    }
}

impl std::error::Error for DefenseError {}

/// An encrypted-deduplication defense: a deterministic, lossless,
/// optionally storage-budgeted map from plaintext fingerprint streams to
/// adversary-visible ciphertext streams. Object-safe by design — the
/// harness, client and tournament all hold `&dyn DefenseScheme`.
pub trait DefenseScheme: fmt::Debug + Send + Sync {
    /// Stable scheme name for reports and JSON rows.
    fn name(&self) -> &'static str;

    /// Encrypts one backup under `ctx`, producing the ciphertext stream
    /// the provider (and the adversary tap) observes plus the scoring
    /// ground truth. Must be deterministic in `(self, plain, ctx)`.
    fn encrypt_backup(&self, plain: &Backup, ctx: &KeyContext) -> EncryptedBackup;

    /// [`Self::encrypt_backup`] with the work optionally sharded across
    /// worker threads. The output must be **bit-identical** to the
    /// sequential path at every thread count; the default simply runs
    /// sequentially, which satisfies the contract trivially.
    fn encrypt_backup_par(
        &self,
        plain: &Backup,
        ctx: &KeyContext,
        par: ParConfig,
    ) -> EncryptedBackup {
        let _ = par;
        self.encrypt_backup(plain, ctx)
    }

    /// Encrypts a whole series, merging the per-backup ground truths.
    /// Schemes whose splitting decisions depend on cross-backup state
    /// (TED's occurrence counters, smoothing's global histogram) override
    /// this so the budget holds over the series, not per backup.
    fn encrypt_series(
        &self,
        series: &BackupSeries,
        ctx: &KeyContext,
    ) -> (BackupSeries, GroundTruth) {
        let mut out = BackupSeries::new(series.name.clone());
        let mut truth = GroundTruth::new();
        for backup in series {
            let enc = self.encrypt_backup(backup, ctx);
            truth.merge(&enc.truth);
            out.push(enc.backup);
        }
        (out, truth)
    }

    /// The configured storage-blowup ceiling (unique ciphertexts per
    /// unique plaintext, `>= 1.0`), or `None` for schemes whose blowup is
    /// emergent rather than budgeted (MinHash splits on segment-minimum
    /// boundaries, not against a target).
    fn blowup_budget(&self) -> Option<f64> {
        None
    }
}

/// Encrypts one fingerprint into the `variant`-th ciphertext of its
/// splitting universe: `HMAC(split_key, M ‖ variant)`. Variant 0 is a
/// full-width HMAC input distinct from plain deterministic MLE
/// (`HMAC(secret, M)`), so split schemes never collide with [`NoDefense`]
/// ciphertexts by construction of the message layout.
pub(crate) fn variant_fp(split_key: &[u8; 32], fp: Fingerprint, variant: u64) -> Fingerprint {
    let mut msg = [0u8; 16];
    msg[..8].copy_from_slice(&fp.to_bytes());
    msg[8..].copy_from_slice(&variant.to_le_bytes());
    Fingerprint(hmac::hmac_u64(split_key, &msg))
}

/// The identity defense: plain deterministic MLE under the context
/// secret. Exists so "undefended" is a first-class scheme the tournament
/// can baseline against, and so scheme selection has a zero-cost default.
///
/// Test-pinned bit-identical to
/// [`DeterministicTraceEncryptor`] — stream, ground
/// truth, store stats, tap series and both-policy inference all match the
/// pre-trait pipeline exactly.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NoDefense;

impl DefenseScheme for NoDefense {
    fn name(&self) -> &'static str {
        "none"
    }

    fn encrypt_backup(&self, plain: &Backup, ctx: &KeyContext) -> EncryptedBackup {
        DeterministicTraceEncryptor::new(ctx.secret()).encrypt_backup(plain)
    }

    fn encrypt_backup_par(
        &self,
        plain: &Backup,
        ctx: &KeyContext,
        par: ParConfig,
    ) -> EncryptedBackup {
        DeterministicTraceEncryptor::new(ctx.secret()).encrypt_backup_par(plain, par)
    }

    fn blowup_budget(&self) -> Option<f64> {
        Some(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use freqdedup_trace::ChunkRecord;

    fn stream(n: usize, seed: u64) -> Backup {
        let mut x = seed | 1;
        Backup::from_chunks(
            "b",
            (0..n)
                .map(|_| {
                    x = x
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    ChunkRecord::new(Fingerprint(x), 8192)
                })
                .collect(),
        )
    }

    #[test]
    fn no_defense_matches_plain_mle() {
        let plain = stream(4000, 3);
        let ctx = KeyContext::new(b"secret", 0);
        let via_trait = NoDefense.encrypt_backup(&plain, &ctx);
        let direct = DeterministicTraceEncryptor::new(b"secret").encrypt_backup(&plain);
        assert_eq!(via_trait.backup, direct.backup);
        assert_eq!(via_trait.truth.len(), direct.truth.len());
    }

    #[test]
    fn no_defense_par_is_bit_identical() {
        let plain = stream(10_000, 9);
        let ctx = KeyContext::new(b"secret", 0);
        let seq = NoDefense.encrypt_backup(&plain, &ctx);
        for threads in [1usize, 2, 8] {
            let par = NoDefense.encrypt_backup_par(&plain, &ctx, ParConfig::with_threads(threads));
            assert_eq!(seq.backup, par.backup);
        }
    }

    #[test]
    fn no_defense_ignores_seed_but_not_secret() {
        let plain = stream(1000, 5);
        let a = NoDefense.encrypt_backup(&plain, &KeyContext::new(b"s1", 1));
        let b = NoDefense.encrypt_backup(&plain, &KeyContext::new(b"s1", 2));
        let c = NoDefense.encrypt_backup(&plain, &KeyContext::new(b"s2", 1));
        assert_eq!(a.backup, b.backup, "passthrough has no randomness");
        assert_ne!(a.backup, c.backup, "secret must matter");
    }

    #[test]
    fn variant_fp_separates_variants_and_schemes() {
        let ctx = KeyContext::new(b"secret", 7);
        let k1 = ctx.split_key(b"freqdedup-ted");
        let k2 = ctx.split_key(b"freqdedup-pfse");
        let fp = Fingerprint(42);
        assert_ne!(variant_fp(&k1, fp, 0), variant_fp(&k1, fp, 1));
        assert_ne!(variant_fp(&k1, fp, 0), variant_fp(&k2, fp, 0));
        assert_eq!(variant_fp(&k1, fp, 3), variant_fp(&k1, fp, 3));
        // A different seed re-keys the whole splitting universe.
        let k3 = KeyContext::new(b"secret", 8).split_key(b"freqdedup-ted");
        assert_ne!(variant_fp(&k1, fp, 0), variant_fp(&k3, fp, 0));
    }

    #[test]
    fn error_display_names_the_constraint() {
        let e = DefenseError::BudgetBelowOne { budget: 0.5 };
        assert!(e.to_string().contains("0.5"));
        assert!(DefenseError::ZeroPartitions
            .to_string()
            .contains("non-zero"));
    }
}
