//! MinHash encryption (Algorithm 4, §6.1).
//!
//! Chunks are encrypted with a **segment-derived** key: the minimum chunk
//! fingerprint `h` of the enclosing segment. By Broder's theorem, two highly
//! similar segments (as adjacent backup versions produce) share their
//! minimum fingerprint with high probability, so most duplicate chunks still
//! encrypt identically and deduplication survives — but chunks that fall
//! into segments with different minima split into distinct ciphertexts,
//! which "sufficiently alters the overall frequency ranking of ciphertext
//! chunks" (§6.1).
//!
//! In fingerprint space (the trace-driven evaluation, §7.1) the ciphertext
//! fingerprint is the truncated `SHA-256(h ‖ fp)`; in content space the
//! segment key is derived from `h` with the workspace KDF.

use freqdedup_chunking::segment::{segment_spans, SegmentParams};
use freqdedup_crypto::{kdf, sha256};
use freqdedup_mle::trace_enc::{EncryptedBackup, GroundTruth};
use freqdedup_trace::{Backup, ChunkRecord, Fingerprint};

use crate::defense::scheme::{DefenseScheme, KeyContext};

/// The minimum fingerprint of a segment (the MinHash). Crate-private:
/// callers hold non-empty segment spans produced by [`segment_spans`],
/// which never yields empty spans.
///
/// # Panics
///
/// Panics on an empty segment.
pub(crate) fn segment_min(chunks: &[ChunkRecord]) -> Fingerprint {
    chunks
        .iter()
        .map(|c| c.fp)
        .min()
        .expect("segment must be non-empty")
}

/// MinHash encryption over fingerprint traces (Algorithm 4).
#[derive(Clone, Debug)]
pub struct MinHashEncryption {
    params: SegmentParams,
}

impl MinHashEncryption {
    /// Creates the scheme with the given segmentation parameters (the paper
    /// uses 512 KB / 1 MB / 2 MB segments).
    #[must_use]
    pub fn new(params: SegmentParams) -> Self {
        MinHashEncryption { params }
    }

    /// The segmentation parameters.
    #[must_use]
    pub fn params(&self) -> &SegmentParams {
        &self.params
    }

    /// Encrypts one fingerprint under a segment minimum: the truncated
    /// `SHA-256(h ‖ fp)` of §7.1.
    #[must_use]
    pub fn encrypt_fp(h: Fingerprint, fp: Fingerprint) -> Fingerprint {
        let digest = sha256::digest_parts(&[&h.to_bytes(), &fp.to_bytes()]);
        Fingerprint::from_digest(&digest)
    }

    /// Derives the 256-bit segment key `K_S` from the segment minimum
    /// fingerprint `h` (content-space MinHash encryption; in a deployment
    /// this derivation would be served by the DupLESS-style key manager,
    /// §6.1).
    #[must_use]
    pub fn segment_key(h: Fingerprint) -> [u8; 32] {
        kdf::derive_key(b"freqdedup-minhash", &h.to_bytes(), b"segment-key")
    }

    /// Encrypts a backup: partitions it into segments, derives each
    /// segment's key from its minimum fingerprint, and encrypts every chunk
    /// with the segment key.
    #[must_use]
    pub fn encrypt_backup(&self, plain: &Backup) -> EncryptedBackup {
        let spans = segment_spans(&plain.chunks, &self.params);
        let mut out = Backup::new(plain.label.clone());
        let mut truth = GroundTruth::new();
        for span in spans {
            let segment = &plain.chunks[span];
            let h = segment_min(segment);
            for rec in segment {
                let cipher = Self::encrypt_fp(h, rec.fp);
                truth.record(cipher, rec.fp);
                out.push(ChunkRecord::new(cipher, rec.size));
            }
        }
        EncryptedBackup { backup: out, truth }
    }
}

impl DefenseScheme for MinHashEncryption {
    fn name(&self) -> &'static str {
        "minhash"
    }

    /// Fingerprint-space MinHash encryption derives keys from segment
    /// minima, not from the MLE secret, so the context is unused — the
    /// scheme is nonetheless deterministic in `(self, plain)`, which
    /// trivially satisfies the trait's determinism contract.
    fn encrypt_backup(&self, plain: &Backup, _ctx: &KeyContext) -> EncryptedBackup {
        self.encrypt_backup(plain)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use freqdedup_trace::stats;

    fn stream(n: usize, seed: u64) -> Backup {
        let mut x = seed | 1;
        Backup::from_chunks(
            "t",
            (0..n)
                .map(|_| {
                    x = x
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    ChunkRecord::new(Fingerprint(x), 8192)
                })
                .collect(),
        )
    }

    #[test]
    fn fp_encryption_depends_on_segment_min() {
        let fp = Fingerprint(42);
        let c1 = MinHashEncryption::encrypt_fp(Fingerprint(1), fp);
        let c2 = MinHashEncryption::encrypt_fp(Fingerprint(2), fp);
        assert_ne!(c1, c2, "different h must change the ciphertext");
        assert_eq!(c1, MinHashEncryption::encrypt_fp(Fingerprint(1), fp));
    }

    #[test]
    fn identical_backups_encrypt_identically() {
        // Same stream → same segments → same minima → fully deduplicable.
        let plain = stream(5000, 3);
        let scheme = MinHashEncryption::new(SegmentParams::default());
        let a = scheme.encrypt_backup(&plain);
        let b = scheme.encrypt_backup(&plain);
        assert_eq!(a.backup.chunks, b.backup.chunks);
    }

    #[test]
    fn deduplication_mostly_preserved_across_similar_backups() {
        // Modify a small clustered region; the unchanged segments keep their
        // minima, so the overwhelming majority of chunks still deduplicate.
        let plain1 = stream(20_000, 7);
        let mut plain2 = plain1.clone();
        for i in 5000..5050 {
            plain2.chunks[i] = ChunkRecord::new(Fingerprint(900_000_000 + i as u64), 8192);
        }
        let scheme = MinHashEncryption::new(SegmentParams::default());
        let c1 = scheme.encrypt_backup(&plain1);
        let c2 = scheme.encrypt_backup(&plain2);
        let overlap = stats::content_overlap(&c1.backup, &c2.backup);
        assert!(
            overlap > 0.9,
            "ciphertext overlap {overlap} too low — dedup destroyed"
        );
    }

    #[test]
    fn plaintext_can_split_into_multiple_ciphertexts() {
        // The same plaintext fingerprint in two segments with different
        // minima yields different ciphertexts — the rank disturbance that
        // defeats frequency analysis.
        // Segment A: minimum 1. Segment B: minimum 2. Shared chunk 1000.
        // Force tiny segments via params with max_bytes small.
        let chunks = vec![
            ChunkRecord::new(Fingerprint(1), 100),
            ChunkRecord::new(Fingerprint(1000), 100),
            ChunkRecord::new(Fingerprint(2), 100),
            ChunkRecord::new(Fingerprint(1000), 100),
        ];
        let plain = Backup::from_chunks("t", chunks);
        let params = SegmentParams {
            min_bytes: 0,
            max_bytes: 150, // force a boundary after every two chunks
            divisor: u64::MAX,
        };
        let scheme = MinHashEncryption::new(params);
        let enc = scheme.encrypt_backup(&plain);
        let c_first = enc.backup.chunks[1].fp;
        let c_second = enc.backup.chunks[3].fp;
        assert_ne!(c_first, c_second);
        // Ground truth still resolves both to plaintext 1000.
        assert_eq!(enc.truth.plain_of(c_first), Some(Fingerprint(1000)));
        assert_eq!(enc.truth.plain_of(c_second), Some(Fingerprint(1000)));
    }

    #[test]
    fn sizes_and_order_preserved() {
        let plain = stream(1000, 11);
        let scheme = MinHashEncryption::new(SegmentParams::default());
        let enc = scheme.encrypt_backup(&plain);
        assert_eq!(enc.backup.len(), plain.len());
        for (p, c) in plain.iter().zip(enc.backup.iter()) {
            assert_eq!(p.size, c.size);
            assert_eq!(enc.truth.plain_of(c.fp), Some(p.fp));
        }
    }

    #[test]
    fn segment_key_domain_separated() {
        assert_ne!(
            MinHashEncryption::segment_key(Fingerprint(1)),
            MinHashEncryption::segment_key(Fingerprint(2))
        );
        assert_ne!(
            MinHashEncryption::segment_key(Fingerprint(1)).to_vec(),
            sha256::digest(&Fingerprint(1).to_bytes()).to_vec()
        );
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn segment_min_rejects_empty() {
        let _ = segment_min(&[]);
    }
}
