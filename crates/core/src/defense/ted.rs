//! TED-style tunable encrypted deduplication: split hot fingerprints
//! across multiple ciphertexts under a storage-blowup budget.
//!
//! The extended version of the source paper answers the frequency-analysis
//! attack with *tunable* dedup: instead of one deterministic ciphertext
//! per plaintext chunk, chunk `M`'s occurrences are divided sequentially
//! into groups of at most `t`, and the `i`-th occurrence is encrypted into
//! variant `⌊i/t⌋` of `M`'s ciphertext universe. A chunk with frequency
//! `f` therefore stores `⌈f/t⌉` unique ciphertexts, capping every
//! ciphertext's observable frequency at `t` — the head of the frequency
//! distribution, which Algorithms 1–3 feed on, is flattened to a plateau.
//!
//! The threshold `t` is not configured directly; the scheme is configured
//! with a **storage-blowup budget** `b >= 1.0` and derives, per encrypted
//! unit, the smallest `t` (most smoothing) whose total unique-ciphertext
//! count `Σ_M ⌈f_M/t⌉` stays within `b ×` the unique-plaintext count.
//! Deriving `t` from the observed histogram makes the budget a guarantee
//! rather than a hope: the measured blowup can never exceed `b`.

use std::collections::HashMap;

use freqdedup_mle::trace_enc::{EncryptedBackup, GroundTruth};
use freqdedup_trace::{Backup, BackupSeries, ChunkRecord, Fingerprint};

use crate::defense::scheme::{variant_fp, DefenseError, DefenseScheme, KeyContext};

/// KDF domain for the TED splitting key.
const DOMAIN: &[u8] = b"freqdedup-ted";

/// Tunable encrypted deduplication under a storage-blowup budget.
#[derive(Clone, Debug, PartialEq)]
pub struct TedScheme {
    budget: f64,
}

impl TedScheme {
    /// Creates the scheme with a storage-blowup budget (unique
    /// ciphertexts per unique plaintext the provider is willing to pay).
    ///
    /// # Errors
    ///
    /// [`DefenseError::BudgetBelowOne`] when `budget` is below 1.0 or not
    /// finite.
    pub fn new(budget: f64) -> Result<Self, DefenseError> {
        if !budget.is_finite() || budget < 1.0 {
            return Err(DefenseError::BudgetBelowOne { budget });
        }
        Ok(TedScheme { budget })
    }

    /// The configured storage-blowup budget.
    #[must_use]
    pub fn budget(&self) -> f64 {
        self.budget
    }

    /// The smallest dedup threshold `t >= 1` whose unique-ciphertext
    /// total `Σ ⌈f/t⌉` fits the budget over this histogram. Smaller `t`
    /// means more splitting, so minimizing `t` maximizes smoothing within
    /// the budget; `t = max(f)` always fits (every chunk collapses to one
    /// ciphertext), so the search cannot fail.
    fn threshold_for(&self, freqs: &HashMap<Fingerprint, u64>) -> u64 {
        let unique = freqs.len() as f64;
        let fits = |t: u64| {
            let total: u64 = freqs.values().map(|f| f.div_ceil(t)).sum();
            total as f64 <= self.budget * unique
        };
        let mut lo = 1u64;
        let mut hi = freqs.values().copied().max().unwrap_or(1);
        if fits(lo) {
            return lo;
        }
        // Invariant: fits(hi), !fits(lo).
        while hi - lo > 1 {
            let mid = lo + (hi - lo) / 2;
            if fits(mid) {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        hi
    }

    /// Encrypts a group of backups as one unit: one shared histogram, one
    /// derived threshold, occurrence counters running across the unit.
    fn encrypt_unit(&self, backups: &[&Backup], ctx: &KeyContext) -> (Vec<Backup>, GroundTruth) {
        let mut freqs: HashMap<Fingerprint, u64> = HashMap::new();
        for backup in backups {
            for rec in backup.iter() {
                *freqs.entry(rec.fp).or_insert(0) += 1;
            }
        }
        let mut truth = GroundTruth::new();
        if freqs.is_empty() {
            let out = backups
                .iter()
                .map(|b| Backup::new(b.label.clone()))
                .collect();
            return (out, truth);
        }
        let t = self.threshold_for(&freqs);
        let key = ctx.split_key(DOMAIN);
        let mut seen: HashMap<Fingerprint, u64> = HashMap::with_capacity(freqs.len());
        let mut out = Vec::with_capacity(backups.len());
        for backup in backups {
            let mut enc = Backup::new(backup.label.clone());
            for rec in backup.iter() {
                let count = seen.entry(rec.fp).or_insert(0);
                let cipher = variant_fp(&key, rec.fp, *count / t);
                *count += 1;
                truth.record(cipher, rec.fp);
                enc.push(ChunkRecord::new(cipher, rec.size));
            }
            out.push(enc);
        }
        (out, truth)
    }
}

impl DefenseScheme for TedScheme {
    fn name(&self) -> &'static str {
        "ted"
    }

    fn encrypt_backup(&self, plain: &Backup, ctx: &KeyContext) -> EncryptedBackup {
        let (mut backups, truth) = self.encrypt_unit(&[plain], ctx);
        EncryptedBackup {
            backup: backups.pop().expect("one input, one output"),
            truth,
        }
    }

    fn encrypt_series(
        &self,
        series: &BackupSeries,
        ctx: &KeyContext,
    ) -> (BackupSeries, GroundTruth) {
        let refs: Vec<&Backup> = series.iter().collect();
        let (backups, truth) = self.encrypt_unit(&refs, ctx);
        let mut out = BackupSeries::new(series.name.clone());
        for b in backups {
            out.push(b);
        }
        (out, truth)
    }

    fn blowup_budget(&self) -> Option<f64> {
        Some(self.budget)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn skewed(n: usize, hot: u64, seed: u64) -> Backup {
        // `hot` distinct chunks repeated heavily, the rest unique.
        let mut x = seed | 1;
        Backup::from_chunks(
            "b",
            (0..n)
                .map(|i| {
                    if i % 3 == 0 {
                        ChunkRecord::new(Fingerprint(1 + (i as u64 % hot)), 8192)
                    } else {
                        x = x
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add(1442695040888963407);
                        ChunkRecord::new(Fingerprint(x | (1 << 63)), 8192)
                    }
                })
                .collect(),
        )
    }

    fn measured_blowup(enc: &EncryptedBackup, plain: &Backup) -> f64 {
        enc.backup.unique_fingerprints().len() as f64 / plain.unique_fingerprints().len() as f64
    }

    #[test]
    fn constructor_rejects_bad_budgets() {
        assert!(matches!(
            TedScheme::new(0.9),
            Err(DefenseError::BudgetBelowOne { .. })
        ));
        assert!(TedScheme::new(f64::NAN).is_err());
        assert!(TedScheme::new(f64::INFINITY).is_err());
        assert!(TedScheme::new(1.0).is_ok());
    }

    #[test]
    fn budget_is_respected() {
        let plain = skewed(30_000, 40, 3);
        let ctx = KeyContext::new(b"secret", 1);
        for budget in [1.0, 1.1, 1.5, 2.0, 4.0] {
            let scheme = TedScheme::new(budget).unwrap();
            let enc = scheme.encrypt_backup(&plain, &ctx);
            let blowup = measured_blowup(&enc, &plain);
            assert!(
                blowup <= budget + 1e-9,
                "budget {budget} exceeded: measured {blowup}"
            );
        }
    }

    #[test]
    fn splitting_caps_ciphertext_frequency() {
        let plain = skewed(30_000, 40, 3);
        let ctx = KeyContext::new(b"secret", 1);
        let scheme = TedScheme::new(2.0).unwrap();
        let enc = scheme.encrypt_backup(&plain, &ctx);
        let mut freqs: HashMap<Fingerprint, u64> = HashMap::new();
        for rec in enc.backup.iter() {
            *freqs.entry(rec.fp).or_insert(0) += 1;
        }
        let plain_max = 30_000 / 3 / 40;
        let cipher_max = freqs.values().copied().max().unwrap();
        assert!(
            cipher_max < plain_max / 2,
            "hot-chunk frequency not flattened: {cipher_max} vs plain {plain_max}"
        );
        // And the blowup actually happened (hot chunks split).
        assert!(measured_blowup(&enc, &plain) > 1.2);
    }

    #[test]
    fn budget_one_degenerates_to_full_dedup() {
        let plain = skewed(5000, 10, 7);
        let ctx = KeyContext::new(b"secret", 1);
        let scheme = TedScheme::new(1.0).unwrap();
        let enc = scheme.encrypt_backup(&plain, &ctx);
        assert!((measured_blowup(&enc, &plain) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn truth_resolves_and_sizes_preserved() {
        let plain = skewed(8000, 20, 11);
        let ctx = KeyContext::new(b"secret", 1);
        let enc = TedScheme::new(1.5).unwrap().encrypt_backup(&plain, &ctx);
        assert_eq!(enc.backup.len(), plain.len());
        for (p, c) in plain.iter().zip(enc.backup.iter()) {
            assert_eq!(p.size, c.size);
            assert_eq!(enc.truth.plain_of(c.fp), Some(p.fp));
        }
    }

    #[test]
    fn deterministic_per_context_distinct_per_seed() {
        let plain = skewed(5000, 15, 5);
        let scheme = TedScheme::new(1.5).unwrap();
        let a = scheme.encrypt_backup(&plain, &KeyContext::new(b"s", 1));
        let b = scheme.encrypt_backup(&plain, &KeyContext::new(b"s", 1));
        let c = scheme.encrypt_backup(&plain, &KeyContext::new(b"s", 2));
        assert_eq!(a.backup, b.backup);
        assert_ne!(a.backup, c.backup);
    }

    #[test]
    fn series_budget_holds_across_backups() {
        let b0 = skewed(10_000, 25, 9);
        let mut b1 = skewed(10_000, 25, 9);
        b1.label = "b2".into();
        let mut series = BackupSeries::new("s");
        let plain_unique = {
            let mut set = b0.unique_fingerprints();
            set.extend(b1.unique_fingerprints());
            set.len()
        };
        series.push(b0);
        series.push(b1);
        let scheme = TedScheme::new(1.5).unwrap();
        let ctx = KeyContext::new(b"secret", 1);
        let (enc, truth) = scheme.encrypt_series(&series, &ctx);
        let mut cipher_unique = std::collections::HashSet::new();
        for b in &enc {
            for rec in b {
                assert!(truth.plain_of(rec.fp).is_some());
                cipher_unique.insert(rec.fp);
            }
        }
        let blowup = cipher_unique.len() as f64 / plain_unique as f64;
        assert!(blowup <= 1.5 + 1e-9, "series blowup {blowup} over budget");
        // Identical content across the pair still deduplicates: the second
        // backup's occurrences continue the same counters, so its early
        // occurrences reuse the first backup's variants.
        assert!(blowup < 1.5);
    }

    #[test]
    fn empty_backup_is_fine() {
        let plain = Backup::new("empty");
        let ctx = KeyContext::new(b"secret", 1);
        let enc = TedScheme::new(2.0).unwrap().encrypt_backup(&plain, &ctx);
        assert_eq!(enc.backup.len(), 0);
    }
}
