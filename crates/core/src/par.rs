//! Sharded parallel execution for the attack pipeline — the canonical
//! public surface of the workspace's parallel layer.
//!
//! The primitives themselves ([`ParConfig`], [`shard_ranges`],
//! [`par_shards`], [`par_map`], [`par_fold`], [`par_for_each_mut`]) live
//! in `freqdedup_trace::par` (the workspace's base crate) so that the
//! `mle` and `store` layers — which `freqdedup-core` itself depends on —
//! can share them without a dependency cycle. This module re-exports them
//! unchanged; attack-side code should import from here.
//!
//! What runs on them in this crate:
//!
//! * [`crate::dense::DenseStats::full_with_policy_par`] — dense `COUNT`:
//!   per-shard frequency counting over contiguous stream ranges
//!   (elementwise-summed in shard order) and the left/right CSR
//!   neighbour-table build sharded **by chunk-id range** so per-shard
//!   sorted runs concatenate into exactly the globally sorted adjacency
//!   array.
//! * [`crate::attacks::locality::LocalityParams::threads`] — the knob
//!   that selects parallel `COUNT` inside the locality/advanced attacks
//!   (the crawl itself is inherently sequential FIFO expansion and stays
//!   single-threaded).
//! * [`crate::attacks::basic::BasicAttack::run_par`] — parallel
//!   frequency-only counting for Algorithm 1.
//!
//! All of these are **deterministic**: output is bit-identical to the
//! sequential path at every thread count (pinned by the
//! `par_determinism` integration tests).

pub use freqdedup_trace::par::{
    par_fold, par_for_each_mut, par_map, par_shards, shard_ranges, ParConfig,
};
