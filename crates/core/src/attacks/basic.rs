//! The basic attack (Algorithm 1): classical frequency analysis applied to
//! encrypted deduplication.
//!
//! The adversary counts chunk frequencies in the ciphertext stream `C` of
//! the latest backup and in the auxiliary plaintext stream `M` of a prior
//! backup, sorts both by frequency, and infers that the i-th most frequent
//! ciphertext chunk encrypts the i-th most frequent plaintext chunk.
//!
//! As §4.1 discusses — and the evaluation confirms — the attack is extremely
//! sensitive to rank churn from updates and ties, so its inference rate is
//! tiny on real backup workloads. It exists as the baseline the locality
//! attack improves on.

use freqdedup_trace::Backup;

use crate::dense::{DenseStats, StatsView};
use crate::freq_analysis::freq_analysis_dense;
use crate::metrics::Inference;
use crate::par::ParConfig;

/// Classical frequency analysis (Algorithm 1).
#[derive(Clone, Copy, Debug, Default)]
pub struct BasicAttack;

impl BasicAttack {
    /// Creates the attack (stateless).
    #[must_use]
    pub fn new() -> Self {
        BasicAttack
    }

    /// Runs the attack: `T ← FREQ-ANALYSIS(COUNT(C), COUNT(M))`, pairing
    /// every rank up to the smaller table. Counts and ranks on the dense-id
    /// layer (identical output to the fingerprint-keyed path).
    #[must_use]
    pub fn run(&self, cipher: &Backup, plain_aux: &Backup) -> Inference {
        self.run_par(cipher, plain_aux, ParConfig::sequential())
    }

    /// [`Self::run`] with the counting passes sharded across worker
    /// threads; output is bit-identical at every thread count.
    #[must_use]
    pub fn run_par(&self, cipher: &Backup, plain_aux: &Backup, par: ParConfig) -> Inference {
        let sc = DenseStats::frequencies_only_par(cipher, par);
        let sm = DenseStats::frequencies_only_par(plain_aux, par);
        self.run_with_stats(&sc, &sm)
    }

    /// Runs the attack over pre-built state on both sides — any
    /// [`StatsView`]: batch [`DenseStats`] (with or without neighbour
    /// tables; only global frequencies are read) or a streaming
    /// [`crate::streaming::IncrementalStats`] mid-stream.
    #[must_use]
    pub fn run_with_stats<SC: StatsView, SM: StatsView>(&self, sc: &SC, sm: &SM) -> Inference {
        let limit = sc.unique_chunks().min(sm.unique_chunks());
        let fps_c = sc.fingerprints();
        let fps_m = sm.fingerprints();
        let mut t = Inference::with_capacity(limit);
        for (c, m) in freq_analysis_dense(&sc.global_rows(), &sm.global_rows(), limit, fps_c, fps_m)
        {
            t.insert(fps_c[c as usize], fps_m[m as usize]);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::score;
    use freqdedup_mle::trace_enc::DeterministicTraceEncryptor;
    use freqdedup_trace::{ChunkRecord, Fingerprint};

    fn backup(fps: &[u64]) -> Backup {
        Backup::from_chunks("t", fps.iter().map(|&f| ChunkRecord::new(f, 8)).collect())
    }

    #[test]
    fn perfect_on_distinct_frequencies() {
        // Frequencies 3, 2, 1 — no ties, no updates: ranks identify chunks.
        let plain = backup(&[1, 1, 1, 2, 2, 3]);
        let enc = DeterministicTraceEncryptor::new(b"s");
        let observed = enc.encrypt_backup(&plain);
        let inferred = BasicAttack::new().run(&observed.backup, &plain);
        let report = score(&inferred, &observed.backup, &observed.truth);
        assert_eq!(report.correct, 3);
        assert!((report.rate - 1.0).abs() < 1e-12);
    }

    #[test]
    fn confused_by_rank_churn() {
        // One update flips the ranks of two equally-frequent chunks: the
        // basic attack mismatches BOTH (the failure mode of §4.1).
        let aux = backup(&[1, 1, 1, 2, 2, 9]);
        let latest = backup(&[1, 1, 2, 2, 2, 9]); // chunk 2 overtakes chunk 1
        let enc = DeterministicTraceEncryptor::new(b"s");
        let observed = enc.encrypt_backup(&latest);
        let inferred = BasicAttack::new().run(&observed.backup, &aux);
        let report = score(&inferred, &observed.backup, &observed.truth);
        // Chunks 1 and 2 are swapped; only chunk 9 survives.
        assert_eq!(report.correct, 1);
        assert_eq!(report.incorrect, 2);
    }

    #[test]
    fn pairs_bounded_by_smaller_side() {
        let aux = backup(&[1, 2]);
        let latest = backup(&[10, 20, 30, 40]);
        let enc = DeterministicTraceEncryptor::new(b"s");
        let observed = enc.encrypt_backup(&latest);
        let inferred = BasicAttack::new().run(&observed.backup, &aux);
        assert_eq!(inferred.len(), 2);
    }

    #[test]
    fn empty_inputs() {
        let empty = backup(&[]);
        let some = backup(&[1]);
        assert!(BasicAttack::new().run(&empty, &some).is_empty());
        assert!(BasicAttack::new().run(&some, &empty).is_empty());
    }

    #[test]
    fn inference_targets_exist_in_cipher_stream() {
        let aux = backup(&[5, 5, 6, 7]);
        let latest = backup(&[5, 6, 6, 8]);
        let enc = DeterministicTraceEncryptor::new(b"s");
        let observed = enc.encrypt_backup(&latest);
        let inferred = BasicAttack::new().run(&observed.backup, &aux);
        let cipher_set = observed.backup.unique_fingerprints();
        for (c, m) in inferred.iter() {
            assert!(cipher_set.contains(&c));
            assert!(aux.unique_fingerprints().contains(&m));
        }
        let _ = Fingerprint(0);
    }
}
