//! The locality-based attack (Algorithm 2), the paper's main attack.
//!
//! Starting from a small set of high-confidence ciphertext→plaintext pairs
//! (top-frequency matches in ciphertext-only mode, or leaked pairs in
//! known-plaintext mode), the attack repeatedly applies frequency analysis
//! to the **left and right neighbour co-occurrence tables** of each inferred
//! pair: if `M` is the plaintext of `C`, chunk locality makes it likely that
//! frequent neighbours of `M` are the plaintexts of frequent neighbours of
//! `C`. Newly inferred pairs are queued and processed in FIFO order until
//! the queue drains.
//!
//! Parameters (§4.2, Table 1):
//!
//! * `u` — pairs seeded by global frequency analysis (ciphertext-only mode);
//! * `v` — pairs taken from each neighbour-table frequency analysis;
//! * `w` — capacity bound of the inferred set `G` (memory guard).
//!
//! The attack runs on the dense-id/CSR layer of [`crate::dense`] — `COUNT`
//! interns fingerprints to contiguous `u32` ids and builds the neighbour
//! tables with one sort, and the crawl walks contiguous CSR rows. The
//! fingerprint-keyed reference implementation
//! ([`LocalityAttack::run_ciphertext_only_reference`] /
//! [`LocalityAttack::run_known_plaintext_reference`]) is retained as the
//! equivalence oracle and benchmark baseline; both paths produce identical
//! inference sets (see `tests/dense_equivalence.rs`).
//!
//! [`LocalityParams::threads`] shards the `COUNT` phase across worker
//! threads (via [`crate::par`]); the crawl stays sequential, and inference
//! output is bit-identical at every thread count (see
//! `tests/par_determinism.rs`).

use std::collections::VecDeque;

use freqdedup_trace::{Backup, Fingerprint};

use crate::counting::{ChunkStats, FreqTable, TiePolicy};
use crate::dense::{DenseEntry, DenseStats, StatsView};
use crate::freq_analysis::{
    freq_analysis, freq_analysis_dense, freq_analysis_sized, freq_analysis_sized_dense, DensePair,
    Pair,
};
use crate::metrics::Inference;
use crate::par::ParConfig;

/// Tunable parameters of the locality-based attack.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LocalityParams {
    /// Number of top-frequency pairs used to seed `G` in ciphertext-only
    /// mode (paper default: 1).
    pub u: usize,
    /// Pairs returned by each per-neighbourhood frequency analysis
    /// (paper default: 15).
    pub v: usize,
    /// Maximum size of the inferred set `G` (paper default: 200,000 in
    /// ciphertext-only mode, 500,000 in known-plaintext mode).
    pub w: usize,
    /// Whether frequency analysis is size-classified (Algorithm 3). Prefer
    /// [`crate::attacks::advanced::AdvancedAttack`] over setting this
    /// directly.
    pub size_aware: bool,
    /// Neighbour-table tie-break policy (see [`TiePolicy`]).
    pub tie_policy: TiePolicy,
    /// Worker threads for the `COUNT` phase (`0` = auto-detect, `1` =
    /// sequential). The crawl itself is inherently sequential; inference
    /// output is bit-identical at every thread count.
    pub threads: usize,
}

impl LocalityParams {
    /// The paper's ciphertext-only defaults: `u=1, v=15, w=200,000`.
    #[must_use]
    pub fn new(u: usize, v: usize, w: usize) -> Self {
        LocalityParams {
            u,
            v,
            w,
            size_aware: false,
            tie_policy: TiePolicy::StreamOrder,
            threads: 1,
        }
    }

    /// The paper's known-plaintext configuration (`w` raised to 500,000).
    #[must_use]
    pub fn known_plaintext_default() -> Self {
        LocalityParams {
            w: 500_000,
            ..Self::default()
        }
    }

    /// Sets size-aware frequency analysis (builder style).
    #[must_use]
    pub fn size_aware(mut self, enabled: bool) -> Self {
        self.size_aware = enabled;
        self
    }

    /// Sets the neighbour-table tie-break policy (builder style).
    #[must_use]
    pub fn tie_policy(mut self, policy: TiePolicy) -> Self {
        self.tie_policy = policy;
        self
    }

    /// Sets the `COUNT` worker-thread count (builder style; `0` = auto).
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// The [`ParConfig`] this parameter set selects.
    #[must_use]
    pub fn par_config(&self) -> ParConfig {
        ParConfig::with_threads(self.threads)
    }
}

impl Default for LocalityParams {
    fn default() -> Self {
        LocalityParams::new(1, 15, 200_000)
    }
}

/// The locality-based attack (Algorithm 2).
#[derive(Clone, Debug)]
pub struct LocalityAttack {
    params: LocalityParams,
}

impl LocalityAttack {
    /// Creates the attack with the given parameters.
    #[must_use]
    pub fn new(params: LocalityParams) -> Self {
        LocalityAttack { params }
    }

    /// The configured parameters.
    #[must_use]
    pub fn params(&self) -> &LocalityParams {
        &self.params
    }

    /// Ciphertext-only mode: `G` is seeded with the `u` most frequent
    /// ciphertext/plaintext rank matches.
    ///
    /// Runs on the dense-id/CSR layer ([`DenseStats`]); output is identical
    /// to [`Self::run_ciphertext_only_reference`].
    #[must_use]
    pub fn run_ciphertext_only(&self, cipher: &Backup, plain_aux: &Backup) -> Inference {
        let par = self.params.par_config();
        let sc = DenseStats::full_with_policy_par(cipher, self.params.tie_policy, par);
        let sm = DenseStats::full_with_policy_par(plain_aux, self.params.tie_policy, par);
        self.run_ciphertext_only_with_stats(&sc, &sm)
    }

    /// Ciphertext-only mode over pre-built attack state on both sides —
    /// any [`StatsView`]: batch [`DenseStats`] or a streaming
    /// [`crate::streaming::IncrementalStats`] mid-stream. This is the
    /// entry the running adversary calls after each commit without
    /// rebuilding anything.
    #[must_use]
    pub fn run_ciphertext_only_with_stats<SC: StatsView, SM: StatsView>(
        &self,
        sc: &SC,
        sm: &SM,
    ) -> Inference {
        let seed = self.analyze_view(sc, sm, &sc.global_rows(), &sm.global_rows(), self.params.u);
        self.run_from_seed_view(sc, sm, seed)
    }

    /// Known-plaintext mode: `G` is seeded with the leaked pairs that appear
    /// in both `C` and `M`.
    ///
    /// Runs on the dense-id/CSR layer; output is identical to
    /// [`Self::run_known_plaintext_reference`].
    #[must_use]
    pub fn run_known_plaintext(
        &self,
        cipher: &Backup,
        plain_aux: &Backup,
        leaked: &[(Fingerprint, Fingerprint)],
    ) -> Inference {
        let par = self.params.par_config();
        let sc = DenseStats::full_with_policy_par(cipher, self.params.tie_policy, par);
        let sm = DenseStats::full_with_policy_par(plain_aux, self.params.tie_policy, par);
        self.run_known_plaintext_with_stats(&sc, &sm, leaked)
    }

    /// Known-plaintext mode over pre-built attack state on both sides
    /// (any [`StatsView`]; see [`Self::run_ciphertext_only_with_stats`]).
    #[must_use]
    pub fn run_known_plaintext_with_stats<SC: StatsView, SM: StatsView>(
        &self,
        sc: &SC,
        sm: &SM,
        leaked: &[(Fingerprint, Fingerprint)],
    ) -> Inference {
        let seed: Vec<DensePair> = leaked
            .iter()
            .filter_map(|&(c, m)| Some((sc.id_of(c)?, sm.id_of(m)?)))
            .collect();
        self.run_from_seed_view(sc, sm, seed)
    }

    /// The main loop of Algorithm 2 (lines 9–23) over dense ids, generic
    /// over the [`StatsView`] backing each side.
    ///
    /// The inferred set `T` is a flat id-indexed array (`u32::MAX` =
    /// uninferred), so the duplicate-ciphertext guard is one indexed load
    /// instead of a hash probe. Neighbour rows are fetched through
    /// [`StatsView::left_row`]/[`StatsView::right_row`] with two reused
    /// scratch buffers per side: on [`DenseStats`] these are untouched
    /// (the CSR row is returned directly), on
    /// [`crate::streaming::IncrementalStats`] they hold the segment-merged
    /// row — either way the crawl reads contiguous slices.
    fn run_from_seed_view<SC: StatsView, SM: StatsView>(
        &self,
        sc: &SC,
        sm: &SM,
        seed: Vec<DensePair>,
    ) -> Inference {
        const UNINFERRED: u32 = u32::MAX;
        let mut inferred: Vec<u32> = vec![UNINFERRED; sc.unique_chunks()];
        let mut total = 0usize;
        let mut g: VecDeque<DensePair> = VecDeque::new();
        for (c, m) in seed {
            if inferred[c as usize] == UNINFERRED {
                inferred[c as usize] = m;
                total += 1;
                g.push_back((c, m));
            }
        }

        let mut row_c: Vec<DenseEntry> = Vec::new();
        let mut row_m: Vec<DenseEntry> = Vec::new();
        while let Some((c, m)) = g.pop_front() {
            let tl = {
                let yc = sc.left_row(c, &mut row_c);
                let ym = sm.left_row(m, &mut row_m);
                self.analyze_view(sc, sm, yc, ym, self.params.v)
            };
            let tr = {
                let yc = sc.right_row(c, &mut row_c);
                let ym = sm.right_row(m, &mut row_m);
                self.analyze_view(sc, sm, yc, ym, self.params.v)
            };
            for (c2, m2) in tl.into_iter().chain(tr) {
                if inferred[c2 as usize] == UNINFERRED {
                    inferred[c2 as usize] = m2;
                    total += 1;
                    if g.len() <= self.params.w {
                        g.push_back((c2, m2));
                    }
                }
            }
        }

        let fps_c = sc.fingerprints();
        let fps_m = sm.fingerprints();
        let mut t = Inference::with_capacity(total);
        for (c, &m) in inferred.iter().enumerate() {
            if m != UNINFERRED {
                t.insert(fps_c[c], fps_m[m as usize]);
            }
        }
        t
    }

    /// Dispatches to plain or size-classified dense frequency analysis.
    fn analyze_view<SC: StatsView, SM: StatsView>(
        &self,
        sc: &SC,
        sm: &SM,
        yc: &[DenseEntry],
        ym: &[DenseEntry],
        x: usize,
    ) -> Vec<DensePair> {
        if self.params.size_aware {
            freq_analysis_sized_dense(yc, ym, x, sc, sm)
        } else {
            freq_analysis_dense(yc, ym, x, sc.fingerprints(), sm.fingerprints())
        }
    }

    // -----------------------------------------------------------------------
    // Reference implementation (pre-dense, fingerprint-keyed).
    //
    // Retained on purpose: it is the baseline `perf_report` measures the
    // dense layer against, and the oracle the `dense_equivalence` property
    // tests compare with. Not deprecated — it is the readable, paper-shaped
    // form of Algorithm 2.
    // -----------------------------------------------------------------------

    /// Ciphertext-only mode over the fingerprint-keyed [`ChunkStats`]
    /// tables (the reference implementation).
    #[must_use]
    pub fn run_ciphertext_only_reference(&self, cipher: &Backup, plain_aux: &Backup) -> Inference {
        let sc = ChunkStats::full_with_policy(cipher, self.params.tie_policy);
        let sm = ChunkStats::full_with_policy(plain_aux, self.params.tie_policy);
        let seed = self.analyze(&sc, &sm, &sc.freq, &sm.freq, self.params.u);
        self.run_from_seed(&sc, &sm, seed)
    }

    /// Known-plaintext mode over the fingerprint-keyed [`ChunkStats`]
    /// tables (the reference implementation).
    #[must_use]
    pub fn run_known_plaintext_reference(
        &self,
        cipher: &Backup,
        plain_aux: &Backup,
        leaked: &[(Fingerprint, Fingerprint)],
    ) -> Inference {
        let sc = ChunkStats::full_with_policy(cipher, self.params.tie_policy);
        let sm = ChunkStats::full_with_policy(plain_aux, self.params.tie_policy);
        let seed: Vec<Pair> = leaked
            .iter()
            .copied()
            .filter(|&(c, m)| sc.freq.contains_key(&c) && sm.freq.contains_key(&m))
            .collect();
        self.run_from_seed(&sc, &sm, seed)
    }

    /// The main loop of Algorithm 2 (lines 9–23), fingerprint-keyed.
    fn run_from_seed(&self, sc: &ChunkStats, sm: &ChunkStats, seed: Vec<Pair>) -> Inference {
        let mut t = Inference::new();
        let mut g: VecDeque<Pair> = VecDeque::new();
        for (c, m) in seed {
            if t.insert(c, m) {
                g.push_back((c, m));
            }
        }

        let empty = FreqTable::new();
        while let Some((c, m)) = g.pop_front() {
            let lc = sc.left_of(c).unwrap_or(&empty);
            let lm = sm.left_of(m).unwrap_or(&empty);
            let rc = sc.right_of(c).unwrap_or(&empty);
            let rm = sm.right_of(m).unwrap_or(&empty);
            let tl = self.analyze(sc, sm, lc, lm, self.params.v);
            let tr = self.analyze(sc, sm, rc, rm, self.params.v);
            for (c2, m2) in tl.into_iter().chain(tr) {
                if t.insert(c2, m2) && g.len() <= self.params.w {
                    g.push_back((c2, m2));
                }
            }
        }
        t
    }

    /// Dispatches to plain or size-classified frequency analysis
    /// (fingerprint-keyed).
    fn analyze(
        &self,
        sc: &ChunkStats,
        sm: &ChunkStats,
        yc: &FreqTable,
        ym: &FreqTable,
        x: usize,
    ) -> Vec<Pair> {
        if self.params.size_aware {
            freq_analysis_sized(yc, ym, x, &|f| sc.blocks_of(f), &|f| sm.blocks_of(f))
        } else {
            freq_analysis(yc, ym, x)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::score;
    use freqdedup_mle::trace_enc::DeterministicTraceEncryptor;
    use freqdedup_trace::ChunkRecord;

    fn backup(fps: &[u64]) -> Backup {
        Backup::from_chunks("t", fps.iter().map(|&f| ChunkRecord::new(f, 8)).collect())
    }

    fn small_params() -> LocalityParams {
        LocalityParams::new(1, 1, 1000)
    }

    /// The paper's worked example (§4.2, Fig. 3): M = ⟨M1 M2 M1 M2 M3 M4 M2
    /// M3 M4⟩, C = ⟨C1 C2 C5 C2 C1 C2 C3 C4 C2 C3 C4 C4⟩ where Ci encrypts
    /// Mi (C5 is new). With u=v=1 the attack recovers C1..C4 but not C5.
    #[test]
    fn paper_worked_example() {
        let aux = backup(&[1, 2, 1, 2, 3, 4, 2, 3, 4]);
        // Build the cipher stream directly with a known truth mapping:
        // cipher fp = plain fp + 100; C5 = 105 has no plaintext in M.
        let cipher = backup(&[101, 102, 105, 102, 101, 102, 103, 104, 102, 103, 104, 104]);
        let mut truth = freqdedup_mle::trace_enc::GroundTruth::new();
        for i in 1..=4u64 {
            truth.record(Fingerprint(100 + i), Fingerprint(i));
        }
        truth.record(Fingerprint(105), Fingerprint(999)); // "some new chunk"

        let attack = LocalityAttack::new(small_params());
        let inferred = attack.run_ciphertext_only(&cipher, &aux);

        // All four real pairs recovered...
        for i in 1..=4u64 {
            assert_eq!(
                inferred.plain_of(Fingerprint(100 + i)),
                Some(Fingerprint(i)),
                "C{i} should map to M{i}"
            );
        }
        // ...and C5 not inferred correctly (its plaintext is absent from M).
        let report = score(&inferred, &cipher, &truth);
        assert_eq!(report.correct, 4);
        assert_eq!(report.total_unique, 5);
    }

    #[test]
    fn recovers_identical_backup_nearly_fully() {
        // A realistic shape: hot chunks with distinct frequencies (a stable
        // frequency-rank anchor) adjoining a long chain of once-occurring
        // chunks. The u=1 seed hits the anchor; the crawl then walks the
        // unique chain stepwise.
        let mut fps: Vec<u64> = Vec::new();
        for _ in 0..50 {
            fps.extend([1u64, 2, 2]);
        }
        fps.extend(1000..2000u64);
        let plain = backup(&fps);
        let enc = DeterministicTraceEncryptor::new(b"s");
        let observed = enc.encrypt_backup(&plain);
        let attack = LocalityAttack::new(LocalityParams::default());
        let inferred = attack.run_ciphertext_only(&observed.backup, &plain);
        let report = score(&inferred, &observed.backup, &observed.truth);
        assert!(report.rate > 0.9, "rate {}", report.rate);
    }

    #[test]
    fn known_plaintext_seed_expands() {
        // Aux shares the *sequence* but global frequencies are uniform, so
        // ciphertext-only seeding with u=1 may start from a tie; a leaked
        // pair in the middle lets the attack walk both directions.
        let fps: Vec<u64> = (0..200u64).collect();
        let plain = backup(&fps);
        let enc = DeterministicTraceEncryptor::new(b"s");
        let observed = enc.encrypt_backup(&plain);
        let leaked = vec![(observed.backup.chunks[100].fp, plain.chunks[100].fp)];
        let attack = LocalityAttack::new(LocalityParams::known_plaintext_default());
        let inferred = attack.run_known_plaintext(&observed.backup, &plain, &leaked);
        let report = score(&inferred, &observed.backup, &observed.truth);
        assert!(report.rate > 0.95, "rate {}", report.rate);
    }

    #[test]
    fn known_plaintext_filters_foreign_leaks() {
        let plain = backup(&[1, 2, 3]);
        let enc = DeterministicTraceEncryptor::new(b"s");
        let observed = enc.encrypt_backup(&plain);
        // A leaked pair whose plaintext does not appear in the aux backup
        // must be discarded (Algorithm 2 line 7).
        let aux = backup(&[7, 8, 9]);
        let leaked = vec![(observed.backup.chunks[0].fp, Fingerprint(1))];
        let attack = LocalityAttack::new(small_params());
        let inferred = attack.run_known_plaintext(&observed.backup, &aux, &leaked);
        assert!(inferred.is_empty());
    }

    #[test]
    fn w_bounds_queue_growth() {
        // With w=0 the seed pair is processed but nothing new is enqueued
        // beyond the first expansion wave.
        let fps: Vec<u64> = (0..100u64).collect();
        let plain = backup(&fps);
        let enc = DeterministicTraceEncryptor::new(b"s");
        let observed = enc.encrypt_backup(&plain);
        let leaked = vec![(observed.backup.chunks[50].fp, plain.chunks[50].fp)];
        let unbounded = LocalityAttack::new(LocalityParams::new(1, 15, 100_000))
            .run_known_plaintext(&observed.backup, &plain, &leaked);
        let bounded = LocalityAttack::new(LocalityParams::new(1, 15, 0)).run_known_plaintext(
            &observed.backup,
            &plain,
            &leaked,
        );
        assert!(bounded.len() < unbounded.len());
    }

    #[test]
    fn dense_path_matches_reference() {
        // The dense/CSR crawl and the fingerprint-keyed reference crawl
        // must produce the same inference set, pair for pair.
        let mut fps: Vec<u64> = Vec::new();
        for _ in 0..40 {
            fps.extend([1u64, 2, 2, 3]);
        }
        fps.extend(1000..1400u64);
        let plain = backup(&fps);
        let enc = DeterministicTraceEncryptor::new(b"s");
        let observed = enc.encrypt_backup(&plain);
        for policy in [TiePolicy::StreamOrder, TiePolicy::KeyOrder] {
            let attack = LocalityAttack::new(LocalityParams::new(2, 5, 10_000).tie_policy(policy));
            let dense = attack.run_ciphertext_only(&observed.backup, &plain);
            let reference = attack.run_ciphertext_only_reference(&observed.backup, &plain);
            let mut dp: Vec<_> = dense.iter().collect();
            let mut rp: Vec<_> = reference.iter().collect();
            dp.sort_unstable();
            rp.sort_unstable();
            assert_eq!(dp, rp, "policy {policy:?}");
        }
    }

    #[test]
    fn empty_aux_yields_nothing() {
        let plain = backup(&[1, 2, 3]);
        let enc = DeterministicTraceEncryptor::new(b"s");
        let observed = enc.encrypt_backup(&plain);
        let inferred =
            LocalityAttack::new(small_params()).run_ciphertext_only(&observed.backup, &backup(&[]));
        assert!(inferred.is_empty());
    }

    #[test]
    fn one_pair_per_ciphertext() {
        let fps: Vec<u64> = (0..50u64).chain(0..50u64).collect();
        let plain = backup(&fps);
        let enc = DeterministicTraceEncryptor::new(b"s");
        let observed = enc.encrypt_backup(&plain);
        let inferred = LocalityAttack::new(LocalityParams::default())
            .run_ciphertext_only(&observed.backup, &plain);
        // No ciphertext fingerprint can appear twice in T by construction;
        // verify via the public API that the count matches distinct keys.
        let keys: std::collections::HashSet<Fingerprint> =
            inferred.iter().map(|(c, _)| c).collect();
        assert_eq!(keys.len(), inferred.len());
    }
}
