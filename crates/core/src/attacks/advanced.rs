//! The advanced locality-based attack (Algorithm 3, §4.3).
//!
//! Identical to the locality-based attack except that **every** call to
//! frequency analysis — the seeding call and the per-neighbourhood calls —
//! first classifies chunks by their size in 16-byte cipher blocks
//! (`ceil(size/16)`, assuming an AES-based cipher) and rank-matches within
//! each size class. Variable-size chunking thus leaks an extra identifying
//! signal; for fixed-size chunking (the VM dataset) the attack degenerates
//! to the plain locality-based attack.

use freqdedup_trace::{Backup, Fingerprint};

use crate::attacks::locality::{LocalityAttack, LocalityParams};
use crate::dense::StatsView;
use crate::metrics::Inference;

/// The advanced locality-based attack (Algorithm 3).
#[derive(Clone, Debug)]
pub struct AdvancedAttack {
    inner: LocalityAttack,
}

impl AdvancedAttack {
    /// Creates the attack; `params.size_aware` is forced on.
    #[must_use]
    pub fn new(params: LocalityParams) -> Self {
        AdvancedAttack {
            inner: LocalityAttack::new(params.size_aware(true)),
        }
    }

    /// The effective parameters.
    #[must_use]
    pub fn params(&self) -> &LocalityParams {
        self.inner.params()
    }

    /// Ciphertext-only mode (size-classified seeding).
    #[must_use]
    pub fn run_ciphertext_only(&self, cipher: &Backup, plain_aux: &Backup) -> Inference {
        self.inner.run_ciphertext_only(cipher, plain_aux)
    }

    /// Known-plaintext mode.
    #[must_use]
    pub fn run_known_plaintext(
        &self,
        cipher: &Backup,
        plain_aux: &Backup,
        leaked: &[(Fingerprint, Fingerprint)],
    ) -> Inference {
        self.inner.run_known_plaintext(cipher, plain_aux, leaked)
    }

    /// Ciphertext-only mode over pre-built attack state (any
    /// [`StatsView`]; size classification forced on).
    #[must_use]
    pub fn run_ciphertext_only_with_stats<SC: StatsView, SM: StatsView>(
        &self,
        sc: &SC,
        sm: &SM,
    ) -> Inference {
        self.inner.run_ciphertext_only_with_stats(sc, sm)
    }

    /// Known-plaintext mode over pre-built attack state (any
    /// [`StatsView`]; size classification forced on).
    #[must_use]
    pub fn run_known_plaintext_with_stats<SC: StatsView, SM: StatsView>(
        &self,
        sc: &SC,
        sm: &SM,
        leaked: &[(Fingerprint, Fingerprint)],
    ) -> Inference {
        self.inner.run_known_plaintext_with_stats(sc, sm, leaked)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::score;
    use freqdedup_mle::trace_enc::DeterministicTraceEncryptor;
    use freqdedup_trace::ChunkRecord;

    /// Builds a backup whose chunk sizes vary with the fingerprint.
    fn sized_backup(fps: &[u64]) -> Backup {
        Backup::from_chunks(
            "t",
            fps.iter()
                .map(|&f| ChunkRecord::new(f, 1024 + ((f % 64) * 16) as u32))
                .collect(),
        )
    }

    /// Builds a fixed-size backup (VM-style).
    fn fixed_backup(fps: &[u64]) -> Backup {
        Backup::from_chunks(
            "t",
            fps.iter().map(|&f| ChunkRecord::new(f, 4096)).collect(),
        )
    }

    #[test]
    fn size_information_separates_frequency_ties() {
        // Chunks 1 and 2 have identical frequencies but different sizes, so
        // plain frequency analysis can mis-pair them while the advanced
        // attack cannot.
        let aux = sized_backup(&[1, 2, 1, 2, 3]);
        let enc = DeterministicTraceEncryptor::new(b"s");
        let observed = enc.encrypt_backup(&aux);
        let attack = AdvancedAttack::new(LocalityParams::new(2, 2, 100));
        let inferred = attack.run_ciphertext_only(&observed.backup, &aux);
        let report = score(&inferred, &observed.backup, &observed.truth);
        assert_eq!(report.incorrect, 0, "size classes forbid cross-matching");
        assert!(report.correct >= 2);
    }

    #[test]
    fn degenerates_to_locality_on_fixed_size_chunks() {
        // VM dataset property (§5.3.2): with one size class the two attacks
        // are equivalent.
        let fps: Vec<u64> = (0..300u64).flat_map(|i| [i, i % 13 + 500]).collect();
        let aux = fixed_backup(&fps);
        let enc = DeterministicTraceEncryptor::new(b"s");
        let observed = enc.encrypt_backup(&aux);
        let params = LocalityParams::default();
        let advanced =
            AdvancedAttack::new(params.clone()).run_ciphertext_only(&observed.backup, &aux);
        let locality = crate::attacks::locality::LocalityAttack::new(params)
            .run_ciphertext_only(&observed.backup, &aux);
        let ra = score(&advanced, &observed.backup, &observed.truth);
        let rl = score(&locality, &observed.backup, &observed.truth);
        assert_eq!(ra.correct, rl.correct);
        assert_eq!(ra.incorrect, rl.incorrect);
    }

    #[test]
    fn known_plaintext_mode_works() {
        let fps: Vec<u64> = (0..200u64).collect();
        let aux = sized_backup(&fps);
        let enc = DeterministicTraceEncryptor::new(b"s");
        let observed = enc.encrypt_backup(&aux);
        let leaked = vec![(observed.backup.chunks[100].fp, aux.chunks[100].fp)];
        let attack = AdvancedAttack::new(LocalityParams::known_plaintext_default());
        let inferred = attack.run_known_plaintext(&observed.backup, &aux, &leaked);
        let report = score(&inferred, &observed.backup, &observed.truth);
        assert!(report.rate > 0.9, "rate {}", report.rate);
    }

    #[test]
    fn params_accessor_reports_size_aware() {
        let attack = AdvancedAttack::new(LocalityParams::default());
        assert!(attack.params().size_aware);
    }

    #[test]
    fn dense_path_matches_reference() {
        // Size-classified dense crawl vs the fingerprint-keyed reference:
        // identical inference sets (size classes exercise the classified
        // branch of the dense frequency analysis).
        let fps: Vec<u64> = (0..200u64).flat_map(|i| [i, i % 7 + 900]).collect();
        let aux = sized_backup(&fps);
        let enc = DeterministicTraceEncryptor::new(b"s");
        let observed = enc.encrypt_backup(&aux);
        let params = LocalityParams::new(2, 5, 10_000);
        let dense = AdvancedAttack::new(params.clone()).run_ciphertext_only(&observed.backup, &aux);
        let reference = crate::attacks::locality::LocalityAttack::new(params.size_aware(true))
            .run_ciphertext_only_reference(&observed.backup, &aux);
        let mut dp: Vec<_> = dense.iter().collect();
        let mut rp: Vec<_> = reference.iter().collect();
        dp.sort_unstable();
        rp.sort_unstable();
        assert_eq!(dp, rp);
    }
}
