//! The paper's three inference attacks (§4).

pub mod advanced;
pub mod basic;
pub mod locality;

use freqdedup_trace::{Backup, Fingerprint};

use crate::counting::TiePolicy;
use crate::dense::{DenseStats, StatsView};
use crate::metrics::Inference;
use crate::streaming::IncrementalStats;

/// Which attack to run — used by the experiment harness to sweep all three.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AttackKind {
    /// Classical frequency analysis (Algorithm 1).
    Basic,
    /// Locality-based attack (Algorithm 2).
    Locality,
    /// Advanced (size-aware) locality-based attack (Algorithm 3).
    Advanced,
}

impl AttackKind {
    /// All attacks, in the paper's presentation order.
    pub const ALL: [AttackKind; 3] = [
        AttackKind::Basic,
        AttackKind::Locality,
        AttackKind::Advanced,
    ];

    /// Human-readable name as used in the figures.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            AttackKind::Basic => "Basic Attack",
            AttackKind::Locality => "Locality-based Attack",
            AttackKind::Advanced => "Advanced Attack",
        }
    }
}

impl std::fmt::Display for AttackKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Runs `kind` in ciphertext-only mode with the given locality parameters
/// (`u`, `v`, `w` are ignored by the basic attack; `threads` applies to
/// every kind's counting phase).
#[must_use]
pub fn run_ciphertext_only(
    kind: AttackKind,
    cipher: &Backup,
    plain_aux: &Backup,
    params: &locality::LocalityParams,
) -> Inference {
    match kind {
        AttackKind::Basic => {
            basic::BasicAttack::new().run_par(cipher, plain_aux, params.par_config())
        }
        AttackKind::Locality => locality::LocalityAttack::new(params.clone().size_aware(false))
            .run_ciphertext_only(cipher, plain_aux),
        AttackKind::Advanced => {
            advanced::AdvancedAttack::new(params.clone()).run_ciphertext_only(cipher, plain_aux)
        }
    }
}

/// Ciphertext-only dispatch of `kind` over pre-built attack state on both
/// sides (any [`StatsView`] each).
fn run_ciphertext_only_with_stats_kind<SC: StatsView, SM: StatsView>(
    kind: AttackKind,
    sc: &SC,
    sm: &SM,
    params: &locality::LocalityParams,
) -> Inference {
    match kind {
        AttackKind::Basic => basic::BasicAttack::new().run_with_stats(sc, sm),
        AttackKind::Locality => locality::LocalityAttack::new(params.clone().size_aware(false))
            .run_ciphertext_only_with_stats(sc, sm),
        AttackKind::Advanced => {
            advanced::AdvancedAttack::new(params.clone()).run_ciphertext_only_with_stats(sc, sm)
        }
    }
}

/// Runs `kind` in ciphertext-only mode under **both** neighbour-table
/// tie-break policies (`params.tie_policy` is overridden per run).
///
/// This is the attack entry point for provider-side tapped traces: the
/// live-traffic equivalence criterion requires that an adversary tap's
/// inference matches offline ingest under *either* [`TiePolicy`], so the
/// tap consumers (service example, integration tests, serve bench) sweep
/// the pair through this helper.
///
/// Each side's stream is interned and counted **once** and only the
/// neighbour tables are built per policy
/// ([`DenseStats::full_both_policies_par`]); the result is bit-identical
/// to two independent [`run_ciphertext_only`] calls (pinned by
/// `tests/streaming_equivalence.rs`).
#[must_use]
pub fn run_ciphertext_only_both_policies(
    kind: AttackKind,
    cipher: &Backup,
    plain_aux: &Backup,
    params: &locality::LocalityParams,
) -> [(TiePolicy, Inference); 2] {
    let par = params.par_config();
    let [sc_stream, sc_key] = DenseStats::full_both_policies_par(cipher, par);
    let [sm_stream, sm_key] = DenseStats::full_both_policies_par(plain_aux, par);
    [
        (TiePolicy::StreamOrder, &sc_stream, &sm_stream),
        (TiePolicy::KeyOrder, &sc_key, &sm_key),
    ]
    .map(|(policy, sc, sm)| {
        let per_policy = params.clone().tie_policy(policy);
        (
            policy,
            run_ciphertext_only_with_stats_kind(kind, sc, sm, &per_policy),
        )
    })
}

/// Runs `kind` in ciphertext-only mode against a **series** of tapped
/// ciphertext backups, batch-recomputed from scratch: the whole tape is
/// interned in commit order, frequencies are summed across backups, and
/// adjacency stays within each backup (no edges across commit
/// boundaries). This is the batch oracle the streaming path
/// ([`run_ciphertext_only_streaming`]) is equivalence-tested against.
#[must_use]
pub fn run_ciphertext_only_series(
    kind: AttackKind,
    cipher_tape: &[Backup],
    plain_aux: &Backup,
    params: &locality::LocalityParams,
) -> Inference {
    let sc = DenseStats::full_series_with_policy(cipher_tape, params.tie_policy);
    let sm = DenseStats::full_with_policy_par(plain_aux, params.tie_policy, params.par_config());
    run_ciphertext_only_with_stats_kind(kind, &sc, &sm, params)
}

/// Runs `kind` in ciphertext-only mode against a **running**
/// [`IncrementalStats`] maintained behind live traffic — the adversary's
/// O(delta)-per-commit steady state. No ciphertext-side rebuild happens;
/// the crawl reads the segmented tables directly. `params.tie_policy` is
/// ignored in favour of the state's own policy (the tables were folded
/// under it). Bit-identical to [`run_ciphertext_only_series`] over the
/// committed tape.
#[must_use]
pub fn run_ciphertext_only_streaming(
    kind: AttackKind,
    cipher: &IncrementalStats,
    plain_aux: &Backup,
    params: &locality::LocalityParams,
) -> Inference {
    let per_policy = params.clone().tie_policy(cipher.policy());
    let sm = DenseStats::full_with_policy_par(plain_aux, cipher.policy(), params.par_config());
    run_ciphertext_only_with_stats_kind(kind, cipher, &sm, &per_policy)
}

/// Known-plaintext variant of [`run_ciphertext_only_streaming`]. The basic
/// attack ignores the leakage, as in [`run_known_plaintext`].
#[must_use]
pub fn run_known_plaintext_streaming(
    kind: AttackKind,
    cipher: &IncrementalStats,
    plain_aux: &Backup,
    leaked: &[(Fingerprint, Fingerprint)],
    params: &locality::LocalityParams,
) -> Inference {
    let per_policy = params.clone().tie_policy(cipher.policy());
    let sm = DenseStats::full_with_policy_par(plain_aux, cipher.policy(), params.par_config());
    match kind {
        AttackKind::Basic => basic::BasicAttack::new().run_with_stats(cipher, &sm),
        AttackKind::Locality => locality::LocalityAttack::new(per_policy.clone().size_aware(false))
            .run_known_plaintext_with_stats(cipher, &sm, leaked),
        AttackKind::Advanced => advanced::AdvancedAttack::new(per_policy)
            .run_known_plaintext_with_stats(cipher, &sm, leaked),
    }
}

/// Runs `kind` in known-plaintext mode with leaked pairs. The basic attack
/// has no known-plaintext variant in the paper and ignores the leakage.
#[must_use]
pub fn run_known_plaintext(
    kind: AttackKind,
    cipher: &Backup,
    plain_aux: &Backup,
    leaked: &[(Fingerprint, Fingerprint)],
    params: &locality::LocalityParams,
) -> Inference {
    match kind {
        AttackKind::Basic => {
            basic::BasicAttack::new().run_par(cipher, plain_aux, params.par_config())
        }
        AttackKind::Locality => locality::LocalityAttack::new(params.clone().size_aware(false))
            .run_known_plaintext(cipher, plain_aux, leaked),
        AttackKind::Advanced => advanced::AdvancedAttack::new(params.clone())
            .run_known_plaintext(cipher, plain_aux, leaked),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names() {
        assert_eq!(AttackKind::Basic.name(), "Basic Attack");
        assert_eq!(AttackKind::Locality.to_string(), "Locality-based Attack");
        assert_eq!(AttackKind::ALL.len(), 3);
    }

    #[test]
    fn both_policies_match_single_policy_runs() {
        use freqdedup_trace::ChunkRecord;
        let backup = |fps: &[u64]| -> Backup {
            Backup::from_chunks("t", fps.iter().map(|&f| ChunkRecord::new(f, 8)).collect())
        };
        let aux = backup(&[1, 2, 1, 2, 3, 4, 2, 3, 4]);
        let cipher = backup(&[101, 102, 105, 102, 101, 102, 103, 104, 102, 103, 104, 104]);
        let params = locality::LocalityParams::new(1, 1, 1000);
        let both = run_ciphertext_only_both_policies(AttackKind::Locality, &cipher, &aux, &params);
        assert_eq!(both[0].0, TiePolicy::StreamOrder);
        assert_eq!(both[1].0, TiePolicy::KeyOrder);
        for (policy, inference) in both {
            let single = run_ciphertext_only(
                AttackKind::Locality,
                &cipher,
                &aux,
                &params.clone().tie_policy(policy),
            );
            let mut a: Vec<_> = inference.iter().collect();
            let mut b: Vec<_> = single.iter().collect();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "policy {policy:?}");
        }
    }
}
