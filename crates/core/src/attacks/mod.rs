//! The paper's three inference attacks (§4).

pub mod advanced;
pub mod basic;
pub mod locality;

use freqdedup_trace::{Backup, Fingerprint};

use crate::metrics::Inference;

/// Which attack to run — used by the experiment harness to sweep all three.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AttackKind {
    /// Classical frequency analysis (Algorithm 1).
    Basic,
    /// Locality-based attack (Algorithm 2).
    Locality,
    /// Advanced (size-aware) locality-based attack (Algorithm 3).
    Advanced,
}

impl AttackKind {
    /// All attacks, in the paper's presentation order.
    pub const ALL: [AttackKind; 3] = [
        AttackKind::Basic,
        AttackKind::Locality,
        AttackKind::Advanced,
    ];

    /// Human-readable name as used in the figures.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            AttackKind::Basic => "Basic Attack",
            AttackKind::Locality => "Locality-based Attack",
            AttackKind::Advanced => "Advanced Attack",
        }
    }
}

impl std::fmt::Display for AttackKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Runs `kind` in ciphertext-only mode with the given locality parameters
/// (`u`, `v`, `w` are ignored by the basic attack; `threads` applies to
/// every kind's counting phase).
#[must_use]
pub fn run_ciphertext_only(
    kind: AttackKind,
    cipher: &Backup,
    plain_aux: &Backup,
    params: &locality::LocalityParams,
) -> Inference {
    match kind {
        AttackKind::Basic => {
            basic::BasicAttack::new().run_par(cipher, plain_aux, params.par_config())
        }
        AttackKind::Locality => locality::LocalityAttack::new(params.clone().size_aware(false))
            .run_ciphertext_only(cipher, plain_aux),
        AttackKind::Advanced => {
            advanced::AdvancedAttack::new(params.clone()).run_ciphertext_only(cipher, plain_aux)
        }
    }
}

/// Runs `kind` in known-plaintext mode with leaked pairs. The basic attack
/// has no known-plaintext variant in the paper and ignores the leakage.
#[must_use]
pub fn run_known_plaintext(
    kind: AttackKind,
    cipher: &Backup,
    plain_aux: &Backup,
    leaked: &[(Fingerprint, Fingerprint)],
    params: &locality::LocalityParams,
) -> Inference {
    match kind {
        AttackKind::Basic => {
            basic::BasicAttack::new().run_par(cipher, plain_aux, params.par_config())
        }
        AttackKind::Locality => locality::LocalityAttack::new(params.clone().size_aware(false))
            .run_known_plaintext(cipher, plain_aux, leaked),
        AttackKind::Advanced => advanced::AdvancedAttack::new(params.clone())
            .run_known_plaintext(cipher, plain_aux, leaked),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names() {
        assert_eq!(AttackKind::Basic.name(), "Basic Attack");
        assert_eq!(AttackKind::Locality.to_string(), "Locality-based Attack");
        assert_eq!(AttackKind::ALL.len(), 3);
    }
}
