//! The paper's three inference attacks (§4).

pub mod advanced;
pub mod basic;
pub mod locality;

use freqdedup_trace::{Backup, Fingerprint};

use crate::counting::TiePolicy;
use crate::metrics::Inference;

/// Which attack to run — used by the experiment harness to sweep all three.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AttackKind {
    /// Classical frequency analysis (Algorithm 1).
    Basic,
    /// Locality-based attack (Algorithm 2).
    Locality,
    /// Advanced (size-aware) locality-based attack (Algorithm 3).
    Advanced,
}

impl AttackKind {
    /// All attacks, in the paper's presentation order.
    pub const ALL: [AttackKind; 3] = [
        AttackKind::Basic,
        AttackKind::Locality,
        AttackKind::Advanced,
    ];

    /// Human-readable name as used in the figures.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            AttackKind::Basic => "Basic Attack",
            AttackKind::Locality => "Locality-based Attack",
            AttackKind::Advanced => "Advanced Attack",
        }
    }
}

impl std::fmt::Display for AttackKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Runs `kind` in ciphertext-only mode with the given locality parameters
/// (`u`, `v`, `w` are ignored by the basic attack; `threads` applies to
/// every kind's counting phase).
#[must_use]
pub fn run_ciphertext_only(
    kind: AttackKind,
    cipher: &Backup,
    plain_aux: &Backup,
    params: &locality::LocalityParams,
) -> Inference {
    match kind {
        AttackKind::Basic => {
            basic::BasicAttack::new().run_par(cipher, plain_aux, params.par_config())
        }
        AttackKind::Locality => locality::LocalityAttack::new(params.clone().size_aware(false))
            .run_ciphertext_only(cipher, plain_aux),
        AttackKind::Advanced => {
            advanced::AdvancedAttack::new(params.clone()).run_ciphertext_only(cipher, plain_aux)
        }
    }
}

/// Runs `kind` in ciphertext-only mode under **both** neighbour-table
/// tie-break policies (`params.tie_policy` is overridden per run).
///
/// This is the attack entry point for provider-side tapped traces: the
/// live-traffic equivalence criterion requires that an adversary tap's
/// inference matches offline ingest under *either* [`TiePolicy`], so the
/// tap consumers (service example, integration tests, serve bench) sweep
/// the pair through this helper.
#[must_use]
pub fn run_ciphertext_only_both_policies(
    kind: AttackKind,
    cipher: &Backup,
    plain_aux: &Backup,
    params: &locality::LocalityParams,
) -> [(TiePolicy, Inference); 2] {
    [TiePolicy::StreamOrder, TiePolicy::KeyOrder].map(|policy| {
        let per_policy = params.clone().tie_policy(policy);
        (
            policy,
            run_ciphertext_only(kind, cipher, plain_aux, &per_policy),
        )
    })
}

/// Runs `kind` in known-plaintext mode with leaked pairs. The basic attack
/// has no known-plaintext variant in the paper and ignores the leakage.
#[must_use]
pub fn run_known_plaintext(
    kind: AttackKind,
    cipher: &Backup,
    plain_aux: &Backup,
    leaked: &[(Fingerprint, Fingerprint)],
    params: &locality::LocalityParams,
) -> Inference {
    match kind {
        AttackKind::Basic => {
            basic::BasicAttack::new().run_par(cipher, plain_aux, params.par_config())
        }
        AttackKind::Locality => locality::LocalityAttack::new(params.clone().size_aware(false))
            .run_known_plaintext(cipher, plain_aux, leaked),
        AttackKind::Advanced => advanced::AdvancedAttack::new(params.clone())
            .run_known_plaintext(cipher, plain_aux, leaked),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names() {
        assert_eq!(AttackKind::Basic.name(), "Basic Attack");
        assert_eq!(AttackKind::Locality.to_string(), "Locality-based Attack");
        assert_eq!(AttackKind::ALL.len(), 3);
    }

    #[test]
    fn both_policies_match_single_policy_runs() {
        use freqdedup_trace::ChunkRecord;
        let backup = |fps: &[u64]| -> Backup {
            Backup::from_chunks("t", fps.iter().map(|&f| ChunkRecord::new(f, 8)).collect())
        };
        let aux = backup(&[1, 2, 1, 2, 3, 4, 2, 3, 4]);
        let cipher = backup(&[101, 102, 105, 102, 101, 102, 103, 104, 102, 103, 104, 104]);
        let params = locality::LocalityParams::new(1, 1, 1000);
        let both = run_ciphertext_only_both_policies(AttackKind::Locality, &cipher, &aux, &params);
        assert_eq!(both[0].0, TiePolicy::StreamOrder);
        assert_eq!(both[1].0, TiePolicy::KeyOrder);
        for (policy, inference) in both {
            let single = run_ciphertext_only(
                AttackKind::Locality,
                &cipher,
                &aux,
                &params.clone().tie_policy(policy),
            );
            let mut a: Vec<_> = inference.iter().collect();
            let mut b: Vec<_> = single.iter().collect();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "policy {policy:?}");
        }
    }
}
