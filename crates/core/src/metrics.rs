//! Attack scoring: the inference rate (§4) and known-plaintext leakage
//! sampling (§5.3.3).

use std::collections::HashMap;

use freqdedup_mle::trace_enc::GroundTruth;
use freqdedup_trace::{Backup, Fingerprint};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// The result set `T` of an attack: inferred ciphertext→plaintext pairs,
/// at most one plaintext per ciphertext chunk.
#[derive(Clone, Debug, Default)]
pub struct Inference {
    pairs: HashMap<Fingerprint, Fingerprint>,
}

impl Inference {
    /// Creates an empty result set.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty result set sized for `capacity` pairs (used by the
    /// dense attack path, which knows the final size before conversion).
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        Inference {
            pairs: HashMap::with_capacity(capacity),
        }
    }

    /// Records an inferred pair. Returns `false` (and keeps the original)
    /// when the ciphertext chunk was already inferred — matching Algorithm
    /// 2's "if (C, ∗) is not in T" guard.
    pub fn insert(&mut self, cipher: Fingerprint, plain: Fingerprint) -> bool {
        match self.pairs.entry(cipher) {
            std::collections::hash_map::Entry::Occupied(_) => false,
            std::collections::hash_map::Entry::Vacant(v) => {
                v.insert(plain);
                true
            }
        }
    }

    /// Whether `cipher` has already been inferred.
    #[must_use]
    pub fn contains_cipher(&self, cipher: Fingerprint) -> bool {
        self.pairs.contains_key(&cipher)
    }

    /// The inferred plaintext of `cipher`, if any.
    #[must_use]
    pub fn plain_of(&self, cipher: Fingerprint) -> Option<Fingerprint> {
        self.pairs.get(&cipher).copied()
    }

    /// Number of inferred pairs.
    #[must_use]
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Whether no pairs were inferred.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Iterates over inferred `(cipher, plain)` pairs (arbitrary order).
    pub fn iter(&self) -> impl Iterator<Item = (Fingerprint, Fingerprint)> + '_ {
        self.pairs.iter().map(|(&c, &m)| (c, m))
    }
}

impl FromIterator<(Fingerprint, Fingerprint)> for Inference {
    fn from_iter<I: IntoIterator<Item = (Fingerprint, Fingerprint)>>(iter: I) -> Self {
        let mut out = Inference::new();
        for (c, m) in iter {
            out.insert(c, m);
        }
        out
    }
}

/// Scoring report for one attack run.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct InferenceReport {
    /// Unique ciphertext chunks of the target backup whose plaintext was
    /// inferred **correctly**.
    pub correct: usize,
    /// Inferred pairs that were wrong (cipher in the target, plain wrong).
    pub incorrect: usize,
    /// Total unique ciphertext chunks in the target backup (denominator).
    pub total_unique: usize,
    /// The paper's inference rate: `correct / total_unique`.
    pub rate: f64,
}

impl InferenceReport {
    /// Fraction of inferred pairs that are correct (attack precision).
    /// Returns 1.0 for an empty inference.
    #[must_use]
    pub fn precision(&self) -> f64 {
        let total = self.correct + self.incorrect;
        if total == 0 {
            1.0
        } else {
            self.correct as f64 / total as f64
        }
    }
}

/// Scores an inference against the ground truth, counting only ciphertext
/// chunks that actually occur in the target backup (§4: "the ratio of the
/// number of unique ciphertext chunks whose plaintext chunks are
/// successfully inferred over the total number of unique ciphertext chunks
/// in the latest backup").
#[must_use]
pub fn score(inferred: &Inference, target: &Backup, truth: &GroundTruth) -> InferenceReport {
    let unique = target.unique_fingerprints();
    let mut correct = 0usize;
    let mut incorrect = 0usize;
    for (cipher, plain) in inferred.iter() {
        if !unique.contains(&cipher) {
            continue;
        }
        if truth.is_correct(cipher, plain) {
            correct += 1;
        } else {
            incorrect += 1;
        }
    }
    let total_unique = unique.len();
    InferenceReport {
        correct,
        incorrect,
        total_unique,
        rate: if total_unique == 0 {
            0.0
        } else {
            correct as f64 / total_unique as f64
        },
    }
}

/// Samples leaked ciphertext-plaintext pairs for known-plaintext mode
/// (§5.3.3): picks `leakage_rate × total unique ciphertext chunks` of the
/// target backup uniformly at random (deterministic in `seed`) and returns
/// their true pairs — modelling e.g. stolen-device leakage of a few files.
#[must_use]
pub fn leak_pairs(
    target: &Backup,
    truth: &GroundTruth,
    leakage_rate: f64,
    seed: u64,
) -> Vec<(Fingerprint, Fingerprint)> {
    assert!(
        (0.0..=1.0).contains(&leakage_rate),
        "leakage rate must be in [0, 1]"
    );
    let mut unique: Vec<Fingerprint> = target.unique_fingerprints().into_iter().collect();
    unique.sort_unstable(); // canonical order before shuffling
    let n = (leakage_rate * unique.len() as f64).round() as usize;
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    unique.shuffle(&mut rng);
    unique
        .into_iter()
        .take(n)
        .filter_map(|c| truth.plain_of(c).map(|m| (c, m)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use freqdedup_trace::ChunkRecord;

    fn fp(v: u64) -> Fingerprint {
        Fingerprint(v)
    }

    fn backup(fps: &[u64]) -> Backup {
        Backup::from_chunks("t", fps.iter().map(|&f| ChunkRecord::new(f, 8)).collect())
    }

    fn truth_of(pairs: &[(u64, u64)]) -> GroundTruth {
        let mut t = GroundTruth::new();
        for &(c, m) in pairs {
            t.record(fp(c), fp(m));
        }
        t
    }

    #[test]
    fn insert_rejects_duplicate_cipher() {
        let mut inf = Inference::new();
        assert!(inf.insert(fp(1), fp(10)));
        assert!(!inf.insert(fp(1), fp(11)));
        assert_eq!(inf.plain_of(fp(1)), Some(fp(10)));
        assert_eq!(inf.len(), 1);
    }

    #[test]
    fn score_counts_correct_and_incorrect() {
        let truth = truth_of(&[(1, 10), (2, 20), (3, 30)]);
        let target = backup(&[1, 2, 3, 1]);
        let inferred: Inference = [(fp(1), fp(10)), (fp(2), fp(99))].into_iter().collect();
        let report = score(&inferred, &target, &truth);
        assert_eq!(report.correct, 1);
        assert_eq!(report.incorrect, 1);
        assert_eq!(report.total_unique, 3);
        assert!((report.rate - 1.0 / 3.0).abs() < 1e-12);
        assert!((report.precision() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn score_ignores_pairs_outside_target() {
        let truth = truth_of(&[(1, 10), (9, 90)]);
        let target = backup(&[1]);
        let inferred: Inference = [(fp(9), fp(90))].into_iter().collect();
        let report = score(&inferred, &target, &truth);
        assert_eq!(report.correct, 0);
        assert_eq!(report.incorrect, 0);
        assert_eq!(report.rate, 0.0);
    }

    #[test]
    fn score_empty_target() {
        let truth = truth_of(&[]);
        let report = score(&Inference::new(), &backup(&[]), &truth);
        assert_eq!(report.rate, 0.0);
        assert_eq!(report.precision(), 1.0);
    }

    #[test]
    fn leak_pairs_size_and_correctness() {
        let truth = truth_of(&(0..100).map(|i| (i, i + 1000)).collect::<Vec<_>>());
        let target = backup(&(0..100u64).collect::<Vec<_>>());
        let leaked = leak_pairs(&target, &truth, 0.1, 42);
        assert_eq!(leaked.len(), 10);
        for (c, m) in &leaked {
            assert!(truth.is_correct(*c, *m));
        }
    }

    #[test]
    fn leak_pairs_deterministic_per_seed() {
        let truth = truth_of(&(0..50).map(|i| (i, i + 1000)).collect::<Vec<_>>());
        let target = backup(&(0..50u64).collect::<Vec<_>>());
        assert_eq!(
            leak_pairs(&target, &truth, 0.2, 7),
            leak_pairs(&target, &truth, 0.2, 7)
        );
        assert_ne!(
            leak_pairs(&target, &truth, 0.2, 7),
            leak_pairs(&target, &truth, 0.2, 8)
        );
    }

    #[test]
    fn leak_pairs_zero_and_full() {
        let truth = truth_of(&(0..10).map(|i| (i, i + 1000)).collect::<Vec<_>>());
        let target = backup(&(0..10u64).collect::<Vec<_>>());
        assert!(leak_pairs(&target, &truth, 0.0, 1).is_empty());
        assert_eq!(leak_pairs(&target, &truth, 1.0, 1).len(), 10);
    }

    #[test]
    #[should_panic(expected = "leakage rate")]
    fn leak_rate_validated() {
        let _ = leak_pairs(&backup(&[1]), &truth_of(&[(1, 2)]), 1.5, 0);
    }

    #[test]
    fn inference_from_iterator_dedups() {
        let inf: Inference = [(fp(1), fp(10)), (fp(1), fp(11)), (fp(2), fp(20))]
            .into_iter()
            .collect();
        assert_eq!(inf.len(), 2);
        assert_eq!(inf.plain_of(fp(1)), Some(fp(10)));
    }
}
