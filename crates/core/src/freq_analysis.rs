//! The `FREQ-ANALYSIS` procedure (Algorithms 1–3): rank-matching of
//! ciphertext and plaintext chunks by frequency.
//!
//! Given two frequency tables, both sides are sorted by descending count and
//! the i-th ciphertext chunk is paired with the i-th plaintext chunk.
//!
//! **Tie-breaking matters** (§4.1). Entries with equal counts are ordered by
//! their first-occurrence position in the stream, mirroring the paper's
//! sequential LevelDB neighbour lists: chunk locality preserves local stream
//! order across backup versions, so order-based ties keep the two rankings
//! aligned where fingerprint-based ties would randomize them. The final
//! fallback is the fingerprint value, pinning a canonical total order for
//! reproducibility.
//!
//! The [sized](freq_analysis_sized) variant implements Algorithm 3's
//! refinement: chunks are first classified by their size in 16-byte cipher
//! blocks and rank-matching happens within each size class.
//!
//! Two parallel implementations exist:
//!
//! * the **fingerprint-keyed** functions below operate on [`FreqTable`]s
//!   (the paper-faithful LevelDB-style layout; retained as the reference
//!   implementation and compatibility surface);
//! * the **dense** functions ([`rank_dense`], [`top_k_dense`],
//!   [`freq_analysis_dense`], [`freq_analysis_sized_dense`]) operate on
//!   id-indexed [`DenseEntry`] slices from [`crate::dense`] with heap-based
//!   top-k selection — the hot path of the locality crawl. Both produce
//!   identical rankings under the canonical order (verified by the
//!   `dense_equivalence` property tests).

use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap, HashMap};

use freqdedup_trace::Fingerprint;

use crate::counting::{FreqEntry, FreqTable};
use crate::dense::{ChunkId, DenseEntry, StatsView};

/// An inferred ciphertext→plaintext pair.
pub type Pair = (Fingerprint, Fingerprint);

/// Canonical ranking order: higher count first, then earlier first
/// occurrence, then smaller fingerprint.
fn better(a: (Fingerprint, FreqEntry), b: (Fingerprint, FreqEntry)) -> bool {
    (b.1.count, a.1.order, a.0) < (a.1.count, b.1.order, b.0)
}

/// Sorts a frequency table into `(fingerprint, entry)` rows under the
/// canonical order.
#[must_use]
pub fn rank(table: &FreqTable) -> Vec<(Fingerprint, FreqEntry)> {
    let mut rows: Vec<(Fingerprint, FreqEntry)> = table.iter().map(|(&f, &e)| (f, e)).collect();
    rows.sort_unstable_by(|&a, &b| (b.1.count, a.1.order, a.0).cmp(&(a.1.count, b.1.order, b.0)));
    rows
}

/// Plain `FREQ-ANALYSIS`: pairs the top `x` ranks of both tables
/// (Algorithm 1 lines 17–27 / Algorithm 2 lines 47–56).
///
/// Returns at most `min(x, |yc|, |ym|)` pairs.
#[must_use]
pub fn freq_analysis(yc: &FreqTable, ym: &FreqTable, x: usize) -> Vec<Pair> {
    let take = x.min(yc.len()).min(ym.len());
    if take == 0 {
        return Vec::new();
    }
    let rc = top_k(yc, take);
    let rm = top_k(ym, take);
    rc.into_iter()
        .zip(rm)
        .map(|((c, _), (m, _))| (c, m))
        .collect()
}

/// Returns the top-`k` rows of a table under the canonical order, without
/// sorting the whole table when `k` is small.
fn top_k(table: &FreqTable, k: usize) -> Vec<(Fingerprint, FreqEntry)> {
    if k * 8 >= table.len() {
        let mut rows = rank(table);
        rows.truncate(k);
        return rows;
    }
    // Keep a sorted buffer of the k best rows: O(n·log k) for k ≪ n, the
    // common case in the locality attack's inner loop.
    let mut best: Vec<(Fingerprint, FreqEntry)> = Vec::with_capacity(k + 1);
    for (&f, &e) in table {
        let row = (f, e);
        let pos = best.partition_point(|&other| better(other, row));
        if pos < k {
            best.insert(pos, row);
            if best.len() > k {
                best.pop();
            }
        }
    }
    best
}

/// Size-classified `FREQ-ANALYSIS` (Algorithm 3): groups both tables by the
/// chunk size in 16-byte blocks (`CLASSIFY`), then rank-matches the top `x`
/// of every size class present on both sides.
///
/// `blocks_c` / `blocks_m` report the block count of a chunk; chunks whose
/// size is unknown (`None`) are skipped.
#[must_use]
pub fn freq_analysis_sized(
    yc: &FreqTable,
    ym: &FreqTable,
    x: usize,
    blocks_c: &impl Fn(Fingerprint) -> Option<u32>,
    blocks_m: &impl Fn(Fingerprint) -> Option<u32>,
) -> Vec<Pair> {
    if x == 0 || yc.is_empty() || ym.is_empty() {
        return Vec::new();
    }
    let bc = classify(yc, blocks_c);
    let bm = classify(ym, blocks_m);
    let mut pairs = Vec::new();
    // Iterate size classes in ascending order for determinism.
    let mut sizes: Vec<u32> = bc.keys().copied().collect();
    sizes.sort_unstable();
    for s in sizes {
        let Some(mc) = bc.get(&s) else { continue };
        let Some(mm) = bm.get(&s) else { continue };
        pairs.extend(freq_analysis(mc, mm, x));
    }
    pairs
}

/// `CLASSIFY` (Algorithm 3): buckets a frequency table by block count.
fn classify(
    table: &FreqTable,
    blocks: &impl Fn(Fingerprint) -> Option<u32>,
) -> HashMap<u32, FreqTable> {
    let mut out: HashMap<u32, FreqTable> = HashMap::new();
    for (&f, &e) in table {
        if let Some(s) = blocks(f) {
            out.entry(s).or_default().insert(f, e);
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Dense (id-indexed) variants — the attack hot path.
// ---------------------------------------------------------------------------

/// An inferred ciphertext→plaintext pair in dense-id space.
pub type DensePair = (ChunkId, ChunkId);

/// The canonical sort key of a dense row: ascending order = better rank
/// (higher count, earlier first occurrence, smaller fingerprint).
///
/// The fingerprint — not the dense id — is the final tie-break, so interning
/// cannot perturb the canonical order.
#[inline]
fn dense_key(e: &DenseEntry, fps: &[Fingerprint]) -> (Reverse<u32>, u32, u64) {
    (Reverse(e.count), e.order, fps[e.id as usize].0)
}

/// Sorts dense rows under the canonical order (best first). `fps` is the
/// id→fingerprint table of the side the rows belong to.
#[must_use]
pub fn rank_dense(rows: &[DenseEntry], fps: &[Fingerprint]) -> Vec<DenseEntry> {
    let mut sorted = rows.to_vec();
    sorted.sort_unstable_by_key(|e| dense_key(e, fps));
    sorted
}

/// Returns the top-`k` dense rows under the canonical order using a bounded
/// max-heap: `O(n·log k)` and no full materialization when `k ≪ n` — the
/// common case in the locality crawl (`v = 15` against neighbour rows and
/// `u = 1` against the global table).
#[must_use]
pub fn top_k_dense(rows: &[DenseEntry], k: usize, fps: &[Fingerprint]) -> Vec<DenseEntry> {
    if k == 0 || rows.is_empty() {
        return Vec::new();
    }
    if k * 8 >= rows.len() {
        let mut sorted = rank_dense(rows, fps);
        sorted.truncate(k);
        return sorted;
    }
    // Max-heap on the canonical key: the root is the *worst* of the k best
    // rows kept so far, evicted whenever a better candidate arrives.
    let mut heap: BinaryHeap<(Reverse<u32>, u32, u64, u32)> = BinaryHeap::with_capacity(k + 1);
    for e in rows {
        let (c, o, f) = dense_key(e, fps);
        let key = (c, o, f, e.id);
        if heap.len() < k {
            heap.push(key);
        } else if key < *heap.peek().expect("non-empty heap") {
            heap.pop();
            heap.push(key);
        }
    }
    heap.into_sorted_vec()
        .into_iter()
        .map(|(Reverse(count), order, _fp, id)| DenseEntry { id, count, order })
        .collect()
}

/// Plain `FREQ-ANALYSIS` over dense rows: pairs the top `x` ranks of both
/// sides. Mirrors [`freq_analysis`] bit-for-bit in fingerprint space.
#[must_use]
pub fn freq_analysis_dense(
    yc: &[DenseEntry],
    ym: &[DenseEntry],
    x: usize,
    fps_c: &[Fingerprint],
    fps_m: &[Fingerprint],
) -> Vec<DensePair> {
    let take = x.min(yc.len()).min(ym.len());
    if take == 0 {
        return Vec::new();
    }
    let rc = top_k_dense(yc, take, fps_c);
    let rm = top_k_dense(ym, take, fps_m);
    rc.into_iter().zip(rm).map(|(c, m)| (c.id, m.id)).collect()
}

/// Size-classified `FREQ-ANALYSIS` over dense rows (Algorithm 3): buckets
/// both sides by block count, then rank-matches the top `x` of every class
/// present on both sides, classes in ascending order. Mirrors
/// [`freq_analysis_sized`] bit-for-bit in fingerprint space.
///
/// Generic over [`StatsView`], so the same code path serves batch
/// ([`crate::dense::DenseStats`]) and streaming
/// ([`crate::streaming::IncrementalStats`]) state.
#[must_use]
pub fn freq_analysis_sized_dense<SC: StatsView, SM: StatsView>(
    yc: &[DenseEntry],
    ym: &[DenseEntry],
    x: usize,
    sc: &SC,
    sm: &SM,
) -> Vec<DensePair> {
    if x == 0 || yc.is_empty() || ym.is_empty() {
        return Vec::new();
    }
    let bc = classify_dense(yc, sc);
    let bm = classify_dense(ym, sm);
    let mut pairs = Vec::new();
    for (class, rows_c) in &bc {
        let Some(rows_m) = bm.get(class) else {
            continue;
        };
        pairs.extend(freq_analysis_dense(
            rows_c,
            rows_m,
            x,
            sc.fingerprints(),
            sm.fingerprints(),
        ));
    }
    pairs
}

/// `CLASSIFY` over dense rows: buckets by block count, ascending class
/// iteration for determinism.
fn classify_dense(rows: &[DenseEntry], stats: &impl StatsView) -> BTreeMap<u32, Vec<DenseEntry>> {
    let mut out: BTreeMap<u32, Vec<DenseEntry>> = BTreeMap::new();
    for &e in rows {
        out.entry(stats.blocks_of(e.id)).or_default().push(e);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp(v: u64) -> Fingerprint {
        Fingerprint(v)
    }

    /// Table from (fp, count, order) triples.
    fn table(rows: &[(u64, u64, u32)]) -> FreqTable {
        rows.iter()
            .map(|&(f, c, o)| (fp(f), FreqEntry { count: c, order: o }))
            .collect()
    }

    #[test]
    fn rank_descending_count_then_order() {
        let t = table(&[(3, 5, 10), (1, 5, 2), (2, 9, 50)]);
        let r: Vec<u64> = rank(&t).into_iter().map(|(f, _)| f.0).collect();
        // 2 has the highest count; 1 and 3 tie on count, 1 was seen earlier.
        assert_eq!(r, vec![2, 1, 3]);
    }

    #[test]
    fn rank_fingerprint_is_last_resort() {
        let t = table(&[(7, 1, 0), (4, 1, 0)]);
        let r: Vec<u64> = rank(&t).into_iter().map(|(f, _)| f.0).collect();
        assert_eq!(r, vec![4, 7]);
    }

    #[test]
    fn pairs_by_rank() {
        let yc = table(&[(101, 10, 0), (102, 5, 1), (103, 1, 2)]);
        let ym = table(&[(201, 8, 0), (202, 4, 1), (203, 2, 2)]);
        let pairs = freq_analysis(&yc, &ym, 10);
        assert_eq!(
            pairs,
            vec![(fp(101), fp(201)), (fp(102), fp(202)), (fp(103), fp(203))]
        );
    }

    #[test]
    fn order_alignment_on_tied_counts() {
        // The attack-critical case: all counts tie, but the two sides list
        // corresponding entries in the same stream order. Fingerprint-based
        // tie-breaking would scramble this pairing; order-based keeps it.
        let yc = table(&[(900, 1, 5), (100, 1, 9), (500, 1, 13)]);
        let ym = table(&[(42, 1, 7), (77, 1, 11), (13, 1, 15)]);
        let pairs = freq_analysis(&yc, &ym, 3);
        assert_eq!(
            pairs,
            vec![(fp(900), fp(42)), (fp(100), fp(77)), (fp(500), fp(13))]
        );
    }

    #[test]
    fn respects_x_limit() {
        let yc = table(&[(1, 3, 0), (2, 2, 1), (3, 1, 2)]);
        let ym = table(&[(4, 3, 0), (5, 2, 1), (6, 1, 2)]);
        assert_eq!(freq_analysis(&yc, &ym, 1), vec![(fp(1), fp(4))]);
        assert_eq!(freq_analysis(&yc, &ym, 0), vec![]);
    }

    #[test]
    fn respects_min_table_size() {
        let yc = table(&[(1, 3, 0), (2, 2, 1)]);
        let ym = table(&[(4, 3, 0)]);
        assert_eq!(freq_analysis(&yc, &ym, 5), vec![(fp(1), fp(4))]);
    }

    #[test]
    fn empty_tables() {
        let empty = table(&[]);
        let some = table(&[(1, 1, 0)]);
        assert!(freq_analysis(&empty, &some, 5).is_empty());
        assert!(freq_analysis(&some, &empty, 5).is_empty());
    }

    #[test]
    fn top_k_matches_full_sort() {
        // Cross-check the selection path against the sort path.
        let mut rows = Vec::new();
        let mut x = 99u64;
        for i in 0..500u64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            rows.push((i, x % 50, (x % 1000) as u32));
        }
        let t = table(&rows);
        let full = rank(&t);
        for k in [1usize, 3, 10, 100, 500] {
            let selected = top_k(&t, k);
            assert_eq!(selected, full[..k.min(full.len())].to_vec(), "k={k}");
        }
    }

    #[test]
    fn sized_analysis_pairs_within_class() {
        // Two size classes; ranks must not cross classes.
        let yc = table(&[(1, 10, 0), (2, 9, 1), (3, 8, 2)]);
        let ym = table(&[(11, 7, 0), (12, 6, 1), (13, 5, 2)]);
        // Cipher: 1,3 are 1-block; 2 is 2-block. Plain: 11,13 1-block; 12 2-block.
        let bc = |f: Fingerprint| Some(if f.0 == 2 { 2 } else { 1 });
        let bm = |f: Fingerprint| Some(if f.0 == 12 { 2 } else { 1 });
        let mut pairs = freq_analysis_sized(&yc, &ym, 10, &bc, &bm);
        pairs.sort_unstable();
        let mut expected = vec![(fp(1), fp(11)), (fp(3), fp(13)), (fp(2), fp(12))];
        expected.sort_unstable();
        assert_eq!(pairs, expected);
    }

    #[test]
    fn sized_analysis_skips_classes_missing_on_one_side() {
        let yc = table(&[(1, 10, 0)]);
        let ym = table(&[(11, 7, 0)]);
        let bc = |_f: Fingerprint| Some(1);
        let bm = |_f: Fingerprint| Some(2);
        assert!(freq_analysis_sized(&yc, &ym, 10, &bc, &bm).is_empty());
    }

    #[test]
    fn sized_analysis_skips_unknown_sizes() {
        let yc = table(&[(1, 10, 0), (2, 5, 1)]);
        let ym = table(&[(11, 7, 0), (12, 5, 1)]);
        let bc = |f: Fingerprint| if f.0 == 1 { Some(1) } else { None };
        let bm = |f: Fingerprint| if f.0 == 11 { Some(1) } else { None };
        assert_eq!(
            freq_analysis_sized(&yc, &ym, 10, &bc, &bm),
            vec![(fp(1), fp(11))]
        );
    }

    #[test]
    fn sized_equals_plain_when_sizes_uniform() {
        // Fixed-size chunking (VM dataset): the advanced attack degenerates
        // to the plain one.
        let yc = table(&[(1, 5, 0), (2, 4, 1), (3, 3, 2)]);
        let ym = table(&[(11, 6, 0), (12, 5, 1), (13, 4, 2)]);
        let plain = freq_analysis(&yc, &ym, 10);
        let sized = freq_analysis_sized(&yc, &ym, 10, &|_| Some(256), &|_| Some(256));
        assert_eq!(plain, sized);
    }

    /// Dense rows plus a synthetic fps table where id i ↔ fingerprint
    /// `fp_of[i]`.
    fn dense_rows(rows: &[(u64, u32, u32)]) -> (Vec<DenseEntry>, Vec<Fingerprint>) {
        let fps: Vec<Fingerprint> = rows.iter().map(|&(f, _, _)| fp(f)).collect();
        let entries = rows
            .iter()
            .enumerate()
            .map(|(id, &(_, c, o))| DenseEntry {
                id: id as u32,
                count: c,
                order: o,
            })
            .collect();
        (entries, fps)
    }

    #[test]
    fn dense_rank_matches_fingerprint_rank() {
        let rows = [(3u64, 5u32, 10u32), (1, 5, 2), (2, 9, 50), (7, 5, 2)];
        let (entries, fps) = dense_rows(&rows);
        let table: FreqTable = rows
            .iter()
            .map(|&(f, c, o)| {
                (
                    fp(f),
                    FreqEntry {
                        count: u64::from(c),
                        order: o,
                    },
                )
            })
            .collect();
        let legacy: Vec<u64> = rank(&table).into_iter().map(|(f, _)| f.0).collect();
        let dense: Vec<u64> = rank_dense(&entries, &fps)
            .into_iter()
            .map(|e| fps[e.id as usize].0)
            .collect();
        assert_eq!(legacy, dense);
    }

    #[test]
    fn dense_top_k_matches_dense_full_sort() {
        let mut rows = Vec::new();
        let mut x = 7u64;
        for i in 0..500u64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            rows.push((i * 31 % 997, (x % 50) as u32, (x % 1000) as u32));
        }
        let (entries, fps) = dense_rows(&rows);
        let full = rank_dense(&entries, &fps);
        for k in [1usize, 3, 10, 100, 500] {
            assert_eq!(
                top_k_dense(&entries, k, &fps),
                full[..k.min(full.len())].to_vec(),
                "k={k}"
            );
        }
    }

    #[test]
    fn dense_top_k_edge_cases() {
        let (entries, fps) = dense_rows(&[(1, 4, 0), (2, 2, 1)]);
        assert!(top_k_dense(&entries, 0, &fps).is_empty());
        assert!(top_k_dense(&[], 5, &fps).is_empty());
        assert_eq!(top_k_dense(&entries, 10, &fps).len(), 2);
    }

    #[test]
    fn dense_pairs_by_rank() {
        let (yc, fps_c) = dense_rows(&[(101, 10, 0), (102, 5, 1), (103, 1, 2)]);
        let (ym, fps_m) = dense_rows(&[(201, 8, 0), (202, 4, 1), (203, 2, 2)]);
        let pairs = freq_analysis_dense(&yc, &ym, 10, &fps_c, &fps_m);
        assert_eq!(pairs, vec![(0, 0), (1, 1), (2, 2)]);
        assert_eq!(freq_analysis_dense(&yc, &ym, 1, &fps_c, &fps_m).len(), 1);
        assert!(freq_analysis_dense(&yc, &[], 5, &fps_c, &fps_m).is_empty());
    }
}
