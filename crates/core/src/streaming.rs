//! Incremental (streaming) `COUNT` — the attack data layer updated in
//! O(delta) per committed backup.
//!
//! The batch layer ([`crate::dense`]) rebuilds the interner, the global
//! frequency array and both CSR neighbour tables from the full tape on
//! every run — O(total history) per inference, which cannot track a live
//! service. This module makes the same state *foldable*:
//!
//! * [`StatsDelta`] — everything one committed backup contributes, in
//!   id-space: sparse frequency increments plus per-side aggregated
//!   adjacency runs. Deltas form a commutative monoid under
//!   [`StatsDelta::merged`] (counts add, first-seen orders take the
//!   minimum), which is exactly why folding them in any grouping yields
//!   the batch answer.
//! * [`SegmentedCsr`] — a neighbour table as a stack of sorted, aggregated
//!   segments (the logarithmic method): each commit *appends* its delta as
//!   a new segment, and a merge-stack invariant (a segment is merged into
//!   its neighbour whenever it has grown at least as large) bounds the
//!   stack depth to O(log n) while keeping total merge work O(log n)
//!   amortized per entry. Row reads k-way-merge the per-segment runs;
//!   because the merge algebra is associative and commutative, the merged
//!   row is **independent of segmentation** — reading mid-stream, after a
//!   forced [`SegmentedCsr::compact`], or after a restart all observe the
//!   same bits.
//! * [`IncrementalStats`] — the running attack state: interner, frequency
//!   array, both segmented tables, and the logical-position cursor that
//!   keeps [`TiePolicy::StreamOrder`] tie-breaks globally consistent.
//!   [`IncrementalStats::commit`] folds one backup in O(delta · log
//!   history); [`IncrementalStats::to_dense`] materializes the equivalent
//!   [`DenseStats`] for table-level equivalence checks.
//!
//! The state serializes to a CRC-checked binary blob
//! ([`IncrementalStats::write_to`] / [`IncrementalStats::read_from`]) so a
//! restarted adversary tap resumes **bit-identically** — segments and
//! merge counters included — without replaying history. Equivalence with
//! the batch oracle ([`DenseStats::full_series_with_policy`]) is pinned by
//! `tests/streaming_equivalence.rs`.

use std::io::{Read, Write};
use std::ops::Range;

use freqdedup_trace::io::{Crc32, TraceIoError};
use freqdedup_trace::{Backup, Fingerprint};

use crate::counting::TiePolicy;
use crate::dense::{
    adjacency_event_at, ChunkId, ChunkInterner, CooccurrenceCsr, DenseEntry, DenseStats, Side,
    StatsView,
};

/// One aggregated adjacency run: the packed `(chunk ≪ 32 | neighbour)`
/// key with its occurrence count and first-seen (minimum) stream order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AdjEntry {
    /// Packed `(row chunk ≪ 32 | neighbour)` sort key.
    pub key: u64,
    /// Number of occurrences of this adjacency.
    pub count: u32,
    /// Minimum (first-seen) tie-break order across the occurrences.
    pub order: u32,
}

impl AdjEntry {
    /// The row entry this run denotes (the neighbour id is the key's low
    /// half).
    #[inline]
    fn to_dense(self) -> DenseEntry {
        DenseEntry {
            id: self.key as u32,
            count: self.count,
            order: self.order,
        }
    }
}

/// Merges two key-sorted aggregated runs: counts add, orders take the
/// minimum. This is the **entire** delta algebra — it is commutative and
/// associative, so any fold order (per-commit appends, segment merges,
/// compaction, restart) produces the same aggregated rows.
fn merge_adj(a: &[AdjEntry], b: &[AdjEntry]) -> Vec<AdjEntry> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].key.cmp(&b[j].key) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(AdjEntry {
                    key: a[i].key,
                    count: a[i].count + b[j].count,
                    order: a[i].order.min(b[j].order),
                });
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

/// Sorts raw adjacency events and run-length-aggregates them into
/// [`AdjEntry`] runs (the position participates in the sort key, so each
/// run leads with its minimum — first-seen — order).
fn aggregate_events(mut events: Vec<(u64, u32)>) -> Vec<AdjEntry> {
    events.sort_unstable();
    let mut out = Vec::new();
    let mut i = 0;
    while i < events.len() {
        let (key, order) = events[i];
        let mut j = i + 1;
        while j < events.len() && events[j].0 == key {
            j += 1;
        }
        out.push(AdjEntry {
            key,
            count: (j - i) as u32,
            order,
        });
        i = j;
    }
    out
}

/// Everything one committed backup adds to the running attack state, in
/// dense-id space.
///
/// A delta is built against a (mutably borrowed) interner — interning is
/// the only inherently sequential part of `COUNT` — and is pure data
/// afterwards. Two deltas built against the same interner merge with
/// [`Self::merged`]; the merge is commutative and associative, so the
/// order in which deltas are *folded* never matters (the order in which
/// they were *built* fixes id assignment and stream offsets, exactly as
/// in the batch tape semantics).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StatsDelta {
    policy: TiePolicy,
    chunks: u64,
    /// Sparse frequency increments, sorted by id.
    freq: Vec<(ChunkId, u32)>,
    left: Vec<AdjEntry>,
    right: Vec<AdjEntry>,
}

impl StatsDelta {
    /// Builds the delta of one backup: interns its stream into `interner`
    /// (assigning fresh ids to first-seen chunks), counts its frequencies,
    /// and aggregates its within-backup adjacency events with tie-break
    /// orders offset by `position_offset` — the number of logical chunks
    /// committed before this backup (so [`TiePolicy::StreamOrder`] orders
    /// are **global** tape positions, matching
    /// [`DenseStats::full_series_with_policy`]).
    ///
    /// Cost is O(delta · log delta): two sorts over the backup's own
    /// events, independent of total history.
    #[must_use]
    pub fn build(
        interner: &mut ChunkInterner,
        backup: &Backup,
        policy: TiePolicy,
        position_offset: u64,
    ) -> Self {
        let ids: Vec<ChunkId> = backup
            .chunks
            .iter()
            .map(|rec| interner.intern(rec.fp, rec.size))
            .collect();
        let base = position_offset as usize;
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        let mut freq = Vec::new();
        let mut i = 0;
        while i < sorted.len() {
            let id = sorted[i];
            let mut j = i + 1;
            while j < sorted.len() && sorted[j] == id {
                j += 1;
            }
            freq.push((id, (j - i) as u32));
            i = j;
        }
        let left = aggregate_events(
            (1..ids.len())
                .map(|i| adjacency_event_at(&ids, i, Side::Left, policy, base))
                .collect(),
        );
        let right = aggregate_events(
            (1..ids.len())
                .map(|i| adjacency_event_at(&ids, i, Side::Right, policy, base))
                .collect(),
        );
        StatsDelta {
            policy,
            chunks: ids.len() as u64,
            freq,
            left,
            right,
        }
    }

    /// Merges two deltas built against the same interner: frequencies and
    /// adjacency counts add, first-seen orders take the minimum, logical
    /// chunk counts add. Commutative and associative.
    ///
    /// # Panics
    ///
    /// Panics if the deltas were built under different [`TiePolicy`]s.
    #[must_use]
    pub fn merged(&self, other: &StatsDelta) -> StatsDelta {
        assert_eq!(self.policy, other.policy, "tie policies differ");
        let mut freq = Vec::with_capacity(self.freq.len() + other.freq.len());
        let (mut i, mut j) = (0, 0);
        while i < self.freq.len() && j < other.freq.len() {
            match self.freq[i].0.cmp(&other.freq[j].0) {
                std::cmp::Ordering::Less => {
                    freq.push(self.freq[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    freq.push(other.freq[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    freq.push((self.freq[i].0, self.freq[i].1 + other.freq[j].1));
                    i += 1;
                    j += 1;
                }
            }
        }
        freq.extend_from_slice(&self.freq[i..]);
        freq.extend_from_slice(&other.freq[j..]);
        StatsDelta {
            policy: self.policy,
            chunks: self.chunks + other.chunks,
            freq,
            left: merge_adj(&self.left, &other.left),
            right: merge_adj(&self.right, &other.right),
        }
    }

    /// The tie-break policy the delta was built under.
    #[must_use]
    pub fn policy(&self) -> TiePolicy {
        self.policy
    }

    /// Logical (pre-dedup) chunks the delta covers.
    #[must_use]
    pub fn chunks(&self) -> u64 {
        self.chunks
    }

    /// Whether the delta carries no observations at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.chunks == 0
    }
}

/// A neighbour table as a merge-stack of sorted aggregated segments (the
/// logarithmic method).
///
/// Appending a commit's runs pushes a segment and then merges the top of
/// the stack downwards while the invariant "each segment is strictly
/// smaller than the one below it" is violated — O(log n) segments, O(log
/// n) amortized merge work per entry, with the worst single append
/// rewriting the whole table (the compaction stall `perf_report
/// --streaming` measures). Row reads k-way-merge the per-segment runs;
/// the merge algebra makes the result independent of segmentation.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SegmentedCsr {
    /// Sorted aggregated segments, oldest (largest) first.
    segments: Vec<Vec<AdjEntry>>,
    /// Lifetime count of segment merges (compaction events).
    merges: u64,
}

impl SegmentedCsr {
    /// Appends one commit's aggregated runs as a new segment and restores
    /// the merge-stack invariant. Returns the number of entries rewritten
    /// by segment merges (0 = pure append, no compaction).
    fn append(&mut self, entries: Vec<AdjEntry>) -> usize {
        if entries.is_empty() {
            return 0;
        }
        self.segments.push(entries);
        let mut merged_work = 0usize;
        while self.segments.len() >= 2
            && self.segments[self.segments.len() - 1].len()
                >= self.segments[self.segments.len() - 2].len()
        {
            let top = self.segments.pop().expect("two segments present");
            let below = self.segments.pop().expect("two segments present");
            merged_work += top.len() + below.len();
            self.segments.push(merge_adj(&below, &top));
            self.merges += 1;
        }
        merged_work
    }

    /// Merges everything into a single segment (a forced full compaction).
    pub fn compact(&mut self) {
        if self.segments.len() <= 1 {
            return;
        }
        let merged = self.merged_entries();
        self.merges += (self.segments.len() - 1) as u64;
        self.segments = if merged.is_empty() {
            Vec::new()
        } else {
            vec![merged]
        };
    }

    /// The row's sub-range within one sorted segment.
    fn row_range(segment: &[AdjEntry], id: ChunkId) -> Range<usize> {
        let row = u64::from(id);
        let start = segment.partition_point(|e| (e.key >> 32) < row);
        let end = start + segment[start..].partition_point(|e| (e.key >> 32) == row);
        start..end
    }

    /// Merges the row of `id` across all segments into `out` (cleared
    /// first), neighbour ids ascending — the same aggregated row a batch
    /// CSR build over the identical observations produces.
    pub fn row_into(&self, id: ChunkId, out: &mut Vec<DenseEntry>) {
        out.clear();
        let mut slices: Vec<&[AdjEntry]> = Vec::with_capacity(self.segments.len());
        for segment in &self.segments {
            let range = Self::row_range(segment, id);
            if !range.is_empty() {
                slices.push(&segment[range]);
            }
        }
        match slices.len() {
            0 => {}
            1 => out.extend(slices[0].iter().map(|e| e.to_dense())),
            _ => {
                // Small-k merge (k ≤ stack depth = O(log n)): pick the
                // minimum head key each step, combining equal keys.
                let mut heads = vec![0usize; slices.len()];
                loop {
                    let mut best: Option<u64> = None;
                    for (s, slice) in slices.iter().enumerate() {
                        if heads[s] < slice.len() {
                            let key = slice[heads[s]].key;
                            if best.is_none_or(|b| key < b) {
                                best = Some(key);
                            }
                        }
                    }
                    let Some(key) = best else { break };
                    let mut count = 0u32;
                    let mut order = u32::MAX;
                    for (s, slice) in slices.iter().enumerate() {
                        if heads[s] < slice.len() && slice[heads[s]].key == key {
                            count += slice[heads[s]].count;
                            order = order.min(slice[heads[s]].order);
                            heads[s] += 1;
                        }
                    }
                    out.push(DenseEntry {
                        id: key as u32,
                        count,
                        order,
                    });
                }
            }
        }
    }

    /// All runs merged into one sorted aggregated sequence (the
    /// materialization input of [`IncrementalStats::to_dense`]).
    fn merged_entries(&self) -> Vec<AdjEntry> {
        let mut acc: Vec<AdjEntry> = Vec::new();
        for segment in &self.segments {
            acc = if acc.is_empty() {
                segment.clone()
            } else {
                merge_adj(&acc, segment)
            };
        }
        acc
    }

    /// Number of live segments (bounded by O(log n) via the merge-stack
    /// invariant).
    #[must_use]
    pub fn num_segments(&self) -> usize {
        self.segments.len()
    }

    /// Total aggregated entries across all segments (an upper bound on the
    /// fully merged table's size).
    #[must_use]
    pub fn num_entries(&self) -> usize {
        self.segments.iter().map(Vec::len).sum()
    }

    /// Lifetime count of segment merges.
    #[must_use]
    pub fn merges(&self) -> u64 {
        self.merges
    }
}

/// What one [`IncrementalStats::commit`] (or [`IncrementalStats::apply`])
/// did — the receipt the tap's latency log and the streaming bench record.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CommitReceipt {
    /// Logical chunks folded in.
    pub chunks: u64,
    /// Unique chunks first seen in this commit.
    pub new_unique: usize,
    /// CSR entries rewritten by segment merges across both sides (0 = the
    /// commit was a pure segment append; large values are compaction
    /// stalls).
    pub merged_entries: usize,
}

/// The running attack state: `COUNT` output maintained incrementally, one
/// committed backup at a time.
///
/// Equivalent at every commit point to
/// [`DenseStats::full_series_with_policy`] over the committed prefix (the
/// property `tests/streaming_equivalence.rs` pins bit-for-bit), while
/// each [`Self::commit`] costs O(delta · log history) instead of O(total
/// history).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IncrementalStats {
    policy: TiePolicy,
    interner: ChunkInterner,
    /// `F[x]` per dense id; always `interner.len()` long between commits.
    freq: Vec<u32>,
    left: SegmentedCsr,
    right: SegmentedCsr,
    /// Logical chunks folded so far — the global position offset of the
    /// next commit's tie-break orders.
    chunks: u64,
    commits: u64,
}

impl IncrementalStats {
    /// Creates an empty state under the given tie-break policy.
    #[must_use]
    pub fn new(policy: TiePolicy) -> Self {
        IncrementalStats {
            policy,
            interner: ChunkInterner::new(),
            freq: Vec::new(),
            left: SegmentedCsr::default(),
            right: SegmentedCsr::default(),
            chunks: 0,
            commits: 0,
        }
    }

    /// Creates an empty state under `policy` that adopts a pre-populated
    /// `interner` — for callers that build [`StatsDelta`]s directly via
    /// [`StatsDelta::build`] against a shared interner (with explicit
    /// position offsets) and fold them in afterwards, e.g. batched or
    /// re-sharded ingestion. Applied deltas' dense ids must come from
    /// `interner`.
    #[must_use]
    pub fn with_interner(policy: TiePolicy, interner: ChunkInterner) -> Self {
        IncrementalStats {
            interner,
            ..IncrementalStats::new(policy)
        }
    }

    /// Builds (but does not fold) the delta of `backup` against this
    /// state: the backup's chunks are interned into this state's interner
    /// and its tie-break orders are offset by the current logical-position
    /// cursor. The returned delta must be [`Self::apply`]-ed (alone or
    /// [`StatsDelta::merged`] with deltas built after it) before the next
    /// [`Self::build_delta`] / [`Self::commit`], or position offsets
    /// drift.
    pub fn build_delta(&mut self, backup: &Backup) -> StatsDelta {
        StatsDelta::build(&mut self.interner, backup, self.policy, self.chunks)
    }

    /// Folds a delta built by [`Self::build_delta`] into the running
    /// state in O(delta · log history) amortized.
    ///
    /// # Panics
    ///
    /// Panics if the delta was built under a different [`TiePolicy`].
    pub fn apply(&mut self, delta: StatsDelta) -> CommitReceipt {
        assert_eq!(delta.policy, self.policy, "tie policies differ");
        let old_unique = self.freq.len();
        let need = self
            .interner
            .len()
            .max(delta.freq.last().map_or(0, |&(id, _)| id as usize + 1))
            .max(old_unique);
        self.freq.resize(need, 0);
        for &(id, n) in &delta.freq {
            self.freq[id as usize] += n;
        }
        let merged = self.left.append(delta.left) + self.right.append(delta.right);
        self.chunks += delta.chunks;
        self.commits += 1;
        CommitReceipt {
            chunks: delta.chunks,
            new_unique: self.freq.len() - old_unique,
            merged_entries: merged,
        }
    }

    /// Folds one committed backup: [`Self::build_delta`] followed by
    /// [`Self::apply`].
    pub fn commit(&mut self, backup: &Backup) -> CommitReceipt {
        let before = self.interner.len();
        let delta = self.build_delta(backup);
        let mut receipt = self.apply(delta);
        receipt.new_unique = self.interner.len() - before;
        receipt
    }

    /// Forces a full compaction of both neighbour tables. Aggregated rows
    /// — and therefore inference — are unchanged (segmentation
    /// independence); only the segment layout and future merge costs
    /// differ.
    pub fn compact(&mut self) {
        self.left.compact();
        self.right.compact();
    }

    /// The tie-break policy of this state.
    #[must_use]
    pub fn policy(&self) -> TiePolicy {
        self.policy
    }

    /// Logical chunks folded so far.
    #[must_use]
    pub fn logical_chunks(&self) -> u64 {
        self.chunks
    }

    /// Backups committed so far.
    #[must_use]
    pub fn commits(&self) -> u64 {
        self.commits
    }

    /// The global frequency array (indexed by dense id).
    #[must_use]
    pub fn freq(&self) -> &[u32] {
        &self.freq
    }

    /// The left-neighbour segment stack.
    #[must_use]
    pub fn left(&self) -> &SegmentedCsr {
        &self.left
    }

    /// The right-neighbour segment stack.
    #[must_use]
    pub fn right(&self) -> &SegmentedCsr {
        &self.right
    }

    /// The fingerprint ⇄ id mapping.
    #[must_use]
    pub fn interner(&self) -> &ChunkInterner {
        &self.interner
    }

    /// Materializes the equivalent batch [`DenseStats`]: same interner,
    /// same frequencies, and both segment stacks fully merged into CSR
    /// tables. Bit-identical to
    /// [`DenseStats::full_series_with_policy`] over the committed tape.
    #[must_use]
    pub fn to_dense(&self) -> DenseStats {
        let unique = self.interner.len();
        let mut freq = self.freq.clone();
        freq.resize(unique, 0);
        let left = CooccurrenceCsr::from_aggregated(
            unique,
            self.left
                .merged_entries()
                .into_iter()
                .map(|e| (e.key, e.count, e.order)),
        );
        let right = CooccurrenceCsr::from_aggregated(
            unique,
            self.right
                .merged_entries()
                .into_iter()
                .map(|e| (e.key, e.count, e.order)),
        );
        DenseStats {
            interner: self.interner.clone(),
            freq,
            left,
            right,
        }
    }

    /// Serializes the state (CRC-checked, self-delimiting — multiple
    /// states may share one stream).
    ///
    /// # Errors
    ///
    /// Returns [`TraceIoError::Io`] on write failure.
    pub fn write_to<W: Write>(&self, writer: W) -> Result<(), TraceIoError> {
        let mut w = BlobWriter {
            inner: writer,
            crc: Crc32::new(),
        };
        w.write_all(STREAM_MAGIC)?;
        w.write_u16(STREAM_VERSION)?;
        w.write_u8(match self.policy {
            TiePolicy::StreamOrder => 0,
            TiePolicy::KeyOrder => 1,
        })?;
        w.write_u64(self.chunks)?;
        w.write_u64(self.commits)?;
        let unique = self.interner.len() as u32;
        w.write_u32(unique)?;
        for id in 0..unique {
            w.write_u64(self.interner.fingerprint(id).value())?;
            w.write_u32(self.interner.size(id))?;
        }
        w.write_u32(self.freq.len() as u32)?;
        for &f in &self.freq {
            w.write_u32(f)?;
        }
        for side in [&self.left, &self.right] {
            w.write_u32(side.segments.len() as u32)?;
            w.write_u64(side.merges)?;
            for segment in &side.segments {
                w.write_u64(segment.len() as u64)?;
                for e in segment {
                    w.write_u64(e.key)?;
                    w.write_u32(e.count)?;
                    w.write_u32(e.order)?;
                }
            }
        }
        let crc = w.crc.finalize();
        w.inner.write_all(&crc.to_le_bytes())?;
        Ok(())
    }

    /// Deserializes a state written by [`Self::write_to`], verifying
    /// magic, version and CRC. Consumes exactly one state's bytes, so
    /// concatenated states can be read back to back from one reader.
    ///
    /// # Errors
    ///
    /// Returns the corresponding [`TraceIoError`] variant on malformed
    /// input.
    pub fn read_from<R: Read>(reader: R) -> Result<Self, TraceIoError> {
        let mut r = BlobReader {
            inner: reader,
            crc: Crc32::new(),
        };
        let mut magic = [0u8; 4];
        r.read_exact(&mut magic)?;
        if &magic != STREAM_MAGIC {
            return Err(TraceIoError::BadMagic);
        }
        let version = r.read_u16()?;
        if version != STREAM_VERSION {
            return Err(TraceIoError::BadVersion(version));
        }
        let policy = match r.read_u8()? {
            0 => TiePolicy::StreamOrder,
            1 => TiePolicy::KeyOrder,
            p => return Err(TraceIoError::LengthOverflow(u64::from(p))),
        };
        let chunks = r.read_u64()?;
        let commits = r.read_u64()?;
        let unique = r.read_u32()? as usize;
        let mut interner = ChunkInterner::new();
        for _ in 0..unique {
            let fp = Fingerprint(r.read_u64()?);
            let size = r.read_u32()?;
            interner.intern(fp, size);
        }
        if interner.len() != unique {
            // Duplicate fingerprints collapse under interning: the blob
            // was not produced by `write_to`.
            return Err(TraceIoError::LengthOverflow(unique as u64));
        }
        let freq_len = r.read_u32()? as usize;
        let mut freq = Vec::with_capacity(freq_len);
        for _ in 0..freq_len {
            freq.push(r.read_u32()?);
        }
        let mut sides = Vec::with_capacity(2);
        for _ in 0..2 {
            let num_segments = r.read_u32()? as usize;
            let merges = r.read_u64()?;
            let mut segments = Vec::with_capacity(num_segments);
            for _ in 0..num_segments {
                let len = r.read_u64()?;
                if len > 1 << 40 {
                    return Err(TraceIoError::LengthOverflow(len));
                }
                let mut segment = Vec::with_capacity(len as usize);
                for _ in 0..len {
                    let key = r.read_u64()?;
                    let count = r.read_u32()?;
                    let order = r.read_u32()?;
                    segment.push(AdjEntry { key, count, order });
                }
                segments.push(segment);
            }
            sides.push(SegmentedCsr { segments, merges });
        }
        let actual = r.crc.finalize();
        let mut crc_bytes = [0u8; 4];
        r.inner.read_exact(&mut crc_bytes)?;
        let expected = u32::from_le_bytes(crc_bytes);
        if expected != actual {
            return Err(TraceIoError::BadChecksum { expected, actual });
        }
        let right = sides.pop().expect("two sides read");
        let left = sides.pop().expect("two sides read");
        Ok(IncrementalStats {
            policy,
            interner,
            freq,
            left,
            right,
            chunks,
            commits,
        })
    }
}

impl StatsView for IncrementalStats {
    fn unique_chunks(&self) -> usize {
        self.interner.len()
    }

    fn fingerprints(&self) -> &[Fingerprint] {
        self.interner.fingerprints()
    }

    fn id_of(&self, fp: Fingerprint) -> Option<ChunkId> {
        self.interner.get(fp)
    }

    fn blocks_of(&self, id: ChunkId) -> u32 {
        self.interner.size(id).div_ceil(16)
    }

    fn global_rows(&self) -> Vec<DenseEntry> {
        self.freq
            .iter()
            .enumerate()
            .map(|(id, &count)| DenseEntry {
                id: id as u32,
                count,
                order: 0,
            })
            .collect()
    }

    fn left_row<'a>(&'a self, id: ChunkId, scratch: &'a mut Vec<DenseEntry>) -> &'a [DenseEntry] {
        self.left.row_into(id, scratch);
        scratch
    }

    fn right_row<'a>(&'a self, id: ChunkId, scratch: &'a mut Vec<DenseEntry>) -> &'a [DenseEntry] {
        self.right.row_into(id, scratch);
        scratch
    }
}

const STREAM_MAGIC: &[u8; 4] = b"FQIS";
const STREAM_VERSION: u16 = 1;

/// CRC-accumulating writer (mirror of the private helper in
/// `freqdedup_trace::io`, which this format deliberately resembles).
struct BlobWriter<W> {
    inner: W,
    crc: Crc32,
}

impl<W: Write> BlobWriter<W> {
    fn write_all(&mut self, data: &[u8]) -> Result<(), TraceIoError> {
        self.crc.update(data);
        self.inner.write_all(data)?;
        Ok(())
    }

    fn write_u8(&mut self, v: u8) -> Result<(), TraceIoError> {
        self.write_all(&[v])
    }

    fn write_u16(&mut self, v: u16) -> Result<(), TraceIoError> {
        self.write_all(&v.to_le_bytes())
    }

    fn write_u32(&mut self, v: u32) -> Result<(), TraceIoError> {
        self.write_all(&v.to_le_bytes())
    }

    fn write_u64(&mut self, v: u64) -> Result<(), TraceIoError> {
        self.write_all(&v.to_le_bytes())
    }
}

/// CRC-accumulating reader.
struct BlobReader<R> {
    inner: R,
    crc: Crc32,
}

impl<R: Read> BlobReader<R> {
    fn read_exact(&mut self, buf: &mut [u8]) -> Result<(), TraceIoError> {
        self.inner.read_exact(buf)?;
        self.crc.update(buf);
        Ok(())
    }

    fn read_u8(&mut self) -> Result<u8, TraceIoError> {
        let mut b = [0u8; 1];
        self.read_exact(&mut b)?;
        Ok(b[0])
    }

    fn read_u16(&mut self) -> Result<u16, TraceIoError> {
        let mut b = [0u8; 2];
        self.read_exact(&mut b)?;
        Ok(u16::from_le_bytes(b))
    }

    fn read_u32(&mut self) -> Result<u32, TraceIoError> {
        let mut b = [0u8; 4];
        self.read_exact(&mut b)?;
        Ok(u32::from_le_bytes(b))
    }

    fn read_u64(&mut self) -> Result<u64, TraceIoError> {
        let mut b = [0u8; 8];
        self.read_exact(&mut b)?;
        Ok(u64::from_le_bytes(b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use freqdedup_trace::ChunkRecord;

    fn backup(label: &str, fps: &[u64]) -> Backup {
        Backup::from_chunks(
            label,
            fps.iter()
                .map(|&f| ChunkRecord::new(f, 64 + ((f % 5) * 16) as u32))
                .collect(),
        )
    }

    fn tape() -> Vec<Backup> {
        vec![
            backup("b0", &[1, 2, 1, 2, 3, 4, 2, 3, 4]),
            backup("b1", &[2, 3, 4, 4, 9]),
            backup("b2", &[]),
            backup("b3", &[7]),
            backup("b4", &[9, 9, 9]),
            backup("b5", &[1, 9, 2, 7, 5, 5, 1]),
        ]
    }

    #[test]
    fn streaming_equals_series_batch_at_every_prefix() {
        for policy in [TiePolicy::StreamOrder, TiePolicy::KeyOrder] {
            let tape = tape();
            let mut inc = IncrementalStats::new(policy);
            for k in 0..tape.len() {
                inc.commit(&tape[k]);
                let oracle = DenseStats::full_series_with_policy(&tape[..=k], policy);
                assert_eq!(inc.to_dense(), oracle, "prefix {} policy {policy:?}", k + 1);
            }
        }
    }

    #[test]
    fn row_into_matches_materialized_rows() {
        let tape = tape();
        let mut inc = IncrementalStats::new(TiePolicy::StreamOrder);
        for b in &tape {
            inc.commit(b);
        }
        let dense = inc.to_dense();
        let mut row = Vec::new();
        for id in 0..dense.unique_chunks() as u32 {
            inc.left().row_into(id, &mut row);
            assert_eq!(row.as_slice(), dense.left.row(id), "left {id}");
            inc.right().row_into(id, &mut row);
            assert_eq!(row.as_slice(), dense.right.row(id), "right {id}");
        }
    }

    #[test]
    fn forced_compaction_is_invisible_in_rows() {
        let tape = tape();
        let mut plain = IncrementalStats::new(TiePolicy::StreamOrder);
        let mut compacted = IncrementalStats::new(TiePolicy::StreamOrder);
        for b in &tape {
            plain.commit(b);
            compacted.commit(b);
            compacted.compact();
            assert_eq!(plain.to_dense(), compacted.to_dense());
            assert!(compacted.left().num_segments() <= 1);
        }
    }

    #[test]
    fn merge_stack_depth_stays_logarithmic() {
        let mut inc = IncrementalStats::new(TiePolicy::StreamOrder);
        for i in 0..200u64 {
            let fps: Vec<u64> = (0..20).map(|j| (i * 20 + j) % 97).collect();
            inc.commit(&backup("b", &fps));
        }
        // 200 appends, yet the stack holds at most ~log2(total) segments.
        assert!(
            inc.left().num_segments() <= 16,
            "{}",
            inc.left().num_segments()
        );
        assert!(inc.left().merges() > 0);
    }

    #[test]
    fn delta_merge_is_commutative_and_associative() {
        let tape = tape();
        let mut interner = ChunkInterner::new();
        let mut offset = 0u64;
        let deltas: Vec<StatsDelta> = tape
            .iter()
            .map(|b| {
                let d = StatsDelta::build(&mut interner, b, TiePolicy::StreamOrder, offset);
                offset += b.len() as u64;
                d
            })
            .collect();
        let (a, b, c) = (&deltas[0], &deltas[1], &deltas[5]);
        assert_eq!(a.merged(b), b.merged(a));
        assert_eq!(a.merged(b).merged(c), a.merged(&b.merged(c)));
    }

    #[test]
    fn merged_deltas_fold_to_the_same_state() {
        // Applying d0+d1 as one merged delta equals applying them one at
        // a time (the segment layout differs; the materialized state must
        // not).
        let tape = tape();
        let mut one_by_one = IncrementalStats::new(TiePolicy::StreamOrder);
        for b in &tape[..2] {
            one_by_one.commit(b);
        }
        // Build both deltas against one state's interner (explicit
        // offsets), then fold them as a single merged delta.
        let mut merged = IncrementalStats::new(TiePolicy::StreamOrder);
        let d0 = StatsDelta::build(&mut merged.interner, &tape[0], TiePolicy::StreamOrder, 0);
        let d1 = StatsDelta::build(
            &mut merged.interner,
            &tape[1],
            TiePolicy::StreamOrder,
            d0.chunks(),
        );
        merged.apply(d0.merged(&d1));
        assert_eq!(one_by_one.to_dense(), merged.to_dense());
    }

    #[test]
    fn serialization_round_trips_bit_identically() {
        let tape = tape();
        for policy in [TiePolicy::StreamOrder, TiePolicy::KeyOrder] {
            let mut inc = IncrementalStats::new(policy);
            for b in &tape {
                inc.commit(b);
            }
            let mut bytes = Vec::new();
            inc.write_to(&mut bytes).unwrap();
            let back = IncrementalStats::read_from(bytes.as_slice()).unwrap();
            assert_eq!(back, inc);
        }
    }

    #[test]
    fn two_states_share_one_stream() {
        let mut a = IncrementalStats::new(TiePolicy::StreamOrder);
        let mut b = IncrementalStats::new(TiePolicy::KeyOrder);
        a.commit(&backup("x", &[1, 2, 3]));
        b.commit(&backup("x", &[4, 5]));
        let mut bytes = Vec::new();
        a.write_to(&mut bytes).unwrap();
        b.write_to(&mut bytes).unwrap();
        let mut reader = bytes.as_slice();
        assert_eq!(IncrementalStats::read_from(&mut reader).unwrap(), a);
        assert_eq!(IncrementalStats::read_from(&mut reader).unwrap(), b);
        assert!(reader.is_empty());
    }

    #[test]
    fn serialization_rejects_corruption() {
        let mut inc = IncrementalStats::new(TiePolicy::StreamOrder);
        inc.commit(&backup("x", &[1, 2, 1]));
        let mut bytes = Vec::new();
        inc.write_to(&mut bytes).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        assert!(IncrementalStats::read_from(bytes.as_slice()).is_err());
        assert!(matches!(
            IncrementalStats::read_from(&bytes[..10]),
            Err(TraceIoError::Io(_))
        ));
    }

    #[test]
    fn empty_duplicate_and_singleton_deltas() {
        for (fps, label) in [
            (&[][..], "empty"),
            (&[7, 7, 7][..], "duplicate-only"),
            (&[42][..], "singleton"),
        ] {
            let b = backup(label, fps);
            let mut inc = IncrementalStats::new(TiePolicy::StreamOrder);
            let receipt = inc.commit(&b);
            assert_eq!(receipt.chunks, fps.len() as u64);
            assert_eq!(
                inc.to_dense(),
                DenseStats::full_with_policy(&b, TiePolicy::StreamOrder),
                "{label}"
            );
        }
    }
}
