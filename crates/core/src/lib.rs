//! Frequency-analysis inference attacks and defenses for encrypted
//! deduplication — the primary contribution of Li et al. (DSN 2017 /
//! arXiv:1904.05736).
//!
//! # The problem
//!
//! Deterministic message-locked encryption maps identical plaintext chunks to
//! identical ciphertext chunks, so the **frequency distribution** of chunks
//! survives encryption. Backup workloads are highly skewed (Fig. 1) and
//! exhibit **chunk locality** — neighbouring chunks re-occur together across
//! backup versions — so an adversary holding an older backup's plaintext
//! fingerprints can infer the content of the newest backup's ciphertext
//! chunks.
//!
//! # Attacks
//!
//! * [`attacks::basic`] — classical frequency analysis (Algorithm 1): match
//!   the i-th most frequent ciphertext chunk with the i-th most frequent
//!   plaintext chunk. Nearly useless in practice, but the building block.
//! * [`attacks::locality`] — the locality-based attack (Algorithm 2):
//!   iteratively extend an inferred set `G` through left/right neighbour
//!   co-occurrence statistics, parameterized by `u`, `v`, `w`.
//! * [`attacks::advanced`] — the advanced locality-based attack
//!   (Algorithm 3): every frequency-analysis step additionally classifies
//!   chunks by size in 16-byte cipher blocks, exploiting the size leakage of
//!   variable-size chunking.
//!
//! # Defenses
//!
//! All implement the object-safe [`defense::DefenseScheme`] trait
//! (select one at runtime, hand it a [`defense::KeyContext`]):
//!
//! * [`defense::NoDefense`] — plain deterministic MLE, the test-pinned
//!   baseline every tournament row is measured against.
//! * [`defense::minhash`] — MinHash encryption (Algorithm 4): derive the
//!   encryption key per *segment* from the segment's minimum chunk
//!   fingerprint; Broder's theorem keeps keys mostly stable across similar
//!   backups, preserving deduplication while disturbing frequency ranks.
//! * [`defense::scramble`] — scrambling (Algorithm 5): per-segment random
//!   reordering of chunks, breaking the locality the attack feeds on.
//! * [`defense::combined`] — both, the paper's recommended configuration.
//! * [`defense::ted`] — TED-style tunable dedup: split hot fingerprints
//!   across multiple ciphertexts under a storage-blowup budget.
//! * [`defense::smooth`] — partition-based frequency smoothing (the PFSE
//!   shape): partition the histogram, smooth within partitions.
//!
//! # Quick start
//!
//! ```
//! use freqdedup_core::{attacks::locality::{LocalityAttack, LocalityParams}, metrics};
//! use freqdedup_mle::trace_enc::DeterministicTraceEncryptor;
//! use freqdedup_trace::{Backup, ChunkRecord};
//!
//! // A prior backup (auxiliary information) and the latest backup: hot
//! // chunks with *distinct* frequencies (the frequency-analysis anchor)
//! // followed by a long run of once-occurring chunks (the unique chain the
//! // locality crawl walks).
//! let mut fps: Vec<ChunkRecord> = Vec::new();
//! for _ in 0..50 {
//!     fps.push(ChunkRecord::new(1u64, 8192));
//!     fps.push(ChunkRecord::new(2u64, 8192));
//!     fps.push(ChunkRecord::new(2u64, 8192));
//! }
//! fps.extend((1000..3000u64).map(|i| ChunkRecord::new(i, 8192)));
//! let prior = Backup::from_chunks("prior", fps);
//! let latest = prior.clone();
//!
//! // The adversary taps the deterministic-MLE ciphertext stream.
//! let enc = DeterministicTraceEncryptor::new(b"system secret");
//! let observed = enc.encrypt_backup(&latest);
//!
//! // Locality-based attack in ciphertext-only mode.
//! let attack = LocalityAttack::new(LocalityParams::default());
//! let inferred = attack.run_ciphertext_only(&observed.backup, &prior);
//! let report = metrics::score(&inferred, &observed.backup, &observed.truth);
//! assert!(report.rate > 0.9); // identical backups leak almost everything
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attacks;
pub mod counting;
pub mod defense;
pub mod dense;
pub mod ext;
pub mod freq_analysis;
pub mod metrics;
pub mod par;
pub mod streaming;

pub use attacks::AttackKind;
pub use counting::ChunkStats;
pub use defense::{DefenseError, DefenseScheme, KeyContext};
pub use dense::{ChunkInterner, CooccurrenceCsr, DenseEntry, DenseStats, StatsView};
pub use metrics::{Inference, InferenceReport};
pub use par::ParConfig;
pub use streaming::{CommitReceipt, IncrementalStats, StatsDelta};
