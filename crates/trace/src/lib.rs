//! Backup trace model for the `freqdedup` workspace.
//!
//! A *trace* is the logical, pre-deduplication sequence of chunks of one or
//! more backups, exactly what the paper's adversary taps on the wire
//! (§3: "the adversary can ... access the logical order of ciphertext chunks
//! of the latest backup before deduplication").
//!
//! * [`Fingerprint`] — the 64-bit chunk identity used throughout the
//!   trace-analysis path (the real FSL trace uses 48-bit fingerprints; 64 bits
//!   keep the collision probability negligible at reproduction scale).
//! * [`ChunkRecord`] — a `(fingerprint, size)` pair, one logical chunk.
//! * [`Backup`] — one full backup: a labelled sequence of chunk records.
//! * [`BackupSeries`] — the ordered versions of a dataset.
//! * [`stats`] — frequency histograms and CDFs (Fig. 1), deduplication
//!   ratios, storage savings, and chunk-locality measurements.
//! * [`io`] — a compact, versioned, checksummed binary trace format.
//! * [`par`] — deterministic sharded parallel-execution primitives shared
//!   by the counting, encryption and ingest layers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod io;
pub mod par;
pub mod stats;

use std::collections::HashSet;
use std::fmt;

/// A chunk fingerprint: the (truncated) cryptographic hash that identifies a
/// chunk's content (§2.1).
///
/// Stored as a `u64`. Two chunks are *identical* iff their fingerprints are
/// equal; the collision probability is negligible at the scales this
/// workspace handles (≤ 10^8 chunks).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Fingerprint(pub u64);

impl Fingerprint {
    /// Builds a fingerprint from the first 8 bytes (little-endian) of a
    /// digest, the convention used by the whole workspace.
    ///
    /// # Panics
    ///
    /// Panics if `digest` is shorter than 8 bytes.
    #[must_use]
    pub fn from_digest(digest: &[u8]) -> Self {
        let mut b = [0u8; 8];
        b.copy_from_slice(&digest[..8]);
        Fingerprint(u64::from_le_bytes(b))
    }

    /// Raw value accessor.
    #[must_use]
    pub fn value(self) -> u64 {
        self.0
    }

    /// The little-endian byte representation (for hashing/serialization).
    #[must_use]
    pub fn to_bytes(self) -> [u8; 8] {
        self.0.to_le_bytes()
    }

    /// The prefix shard owning this fingerprint when the `u64` space is
    /// range-partitioned into `shards` equal intervals: the fingerprint's
    /// leading bits select the shard, for any shard count. This is the
    /// single partition function shared by every prefix-sharded structure
    /// (fingerprint index shards, sharded dedup engines).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `shards` is zero.
    #[must_use]
    pub fn prefix_shard(self, shards: usize) -> usize {
        debug_assert!(shards > 0, "shard count must be positive");
        ((u128::from(self.0) * shards as u128) >> 64) as usize
    }
}

impl fmt::Debug for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fp:{:016x}", self.0)
    }
}

impl fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

impl From<u64> for Fingerprint {
    fn from(v: u64) -> Self {
        Fingerprint(v)
    }
}

/// One logical chunk occurrence in a backup stream: its fingerprint and its
/// size in bytes.
///
/// The size is carried because the advanced locality-based attack (§4.3)
/// classifies chunks by `ceil(size/16)` cipher blocks.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct ChunkRecord {
    /// Content fingerprint.
    pub fp: Fingerprint,
    /// Chunk size in bytes (pre-encryption; CTR encryption is
    /// length-preserving).
    pub size: u32,
}

impl ChunkRecord {
    /// Convenience constructor.
    #[must_use]
    pub fn new(fp: impl Into<Fingerprint>, size: u32) -> Self {
        ChunkRecord {
            fp: fp.into(),
            size,
        }
    }

    /// Number of 16-byte cipher blocks this chunk occupies
    /// (`ceil(size / 16)`), the classification key of the advanced attack.
    #[must_use]
    pub fn blocks(&self) -> u32 {
        self.size.div_ceil(16)
    }
}

/// A full backup: the logical (pre-dedup) sequence of chunks, in order.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Backup {
    /// Human-readable label, e.g. `"Mar 22"` or `"week-07"`.
    pub label: String,
    /// Logical chunk sequence (identical chunks may repeat).
    pub chunks: Vec<ChunkRecord>,
}

impl Backup {
    /// Creates an empty backup with the given label.
    #[must_use]
    pub fn new(label: impl Into<String>) -> Self {
        Backup {
            label: label.into(),
            chunks: Vec::new(),
        }
    }

    /// Creates a backup from an existing chunk sequence.
    #[must_use]
    pub fn from_chunks(label: impl Into<String>, chunks: Vec<ChunkRecord>) -> Self {
        Backup {
            label: label.into(),
            chunks,
        }
    }

    /// Appends one chunk record.
    pub fn push(&mut self, record: ChunkRecord) {
        self.chunks.push(record);
    }

    /// Number of logical chunks (duplicates included).
    #[must_use]
    pub fn len(&self) -> usize {
        self.chunks.len()
    }

    /// Whether the backup holds no chunks.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.chunks.is_empty()
    }

    /// Total logical bytes before deduplication.
    #[must_use]
    pub fn logical_bytes(&self) -> u64 {
        self.chunks.iter().map(|c| u64::from(c.size)).sum()
    }

    /// The set of unique fingerprints in the backup.
    #[must_use]
    pub fn unique_fingerprints(&self) -> HashSet<Fingerprint> {
        self.chunks.iter().map(|c| c.fp).collect()
    }

    /// Number of unique fingerprints.
    #[must_use]
    pub fn unique_count(&self) -> usize {
        self.unique_fingerprints().len()
    }

    /// Iterates over the chunk records in logical order.
    pub fn iter(&self) -> std::slice::Iter<'_, ChunkRecord> {
        self.chunks.iter()
    }
}

impl<'a> IntoIterator for &'a Backup {
    type Item = &'a ChunkRecord;
    type IntoIter = std::slice::Iter<'a, ChunkRecord>;

    fn into_iter(self) -> Self::IntoIter {
        self.chunks.iter()
    }
}

impl FromIterator<ChunkRecord> for Backup {
    fn from_iter<I: IntoIterator<Item = ChunkRecord>>(iter: I) -> Self {
        Backup {
            label: String::new(),
            chunks: iter.into_iter().collect(),
        }
    }
}

impl Extend<ChunkRecord> for Backup {
    fn extend<I: IntoIterator<Item = ChunkRecord>>(&mut self, iter: I) {
        self.chunks.extend(iter);
    }
}

/// An ordered series of full backups from one data source (oldest first),
/// e.g. the five monthly FSL backups or the thirteen weekly VM backups.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BackupSeries {
    /// Dataset name, e.g. `"fsl"`.
    pub name: String,
    /// Backups in creation order.
    pub backups: Vec<Backup>,
}

impl BackupSeries {
    /// Creates an empty series.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        BackupSeries {
            name: name.into(),
            backups: Vec::new(),
        }
    }

    /// Appends a backup (must be newer than all existing ones).
    pub fn push(&mut self, backup: Backup) {
        self.backups.push(backup);
    }

    /// Number of backups in the series.
    #[must_use]
    pub fn len(&self) -> usize {
        self.backups.len()
    }

    /// Whether the series holds no backups.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.backups.is_empty()
    }

    /// The most recent backup, if any.
    #[must_use]
    pub fn latest(&self) -> Option<&Backup> {
        self.backups.last()
    }

    /// Backup by index (0 = oldest).
    #[must_use]
    pub fn get(&self, index: usize) -> Option<&Backup> {
        self.backups.get(index)
    }

    /// Iterates over backups, oldest first.
    pub fn iter(&self) -> std::slice::Iter<'_, Backup> {
        self.backups.iter()
    }

    /// Total logical bytes across all backups.
    #[must_use]
    pub fn logical_bytes(&self) -> u64 {
        self.backups.iter().map(Backup::logical_bytes).sum()
    }

    /// Total logical chunks across all backups.
    #[must_use]
    pub fn logical_chunks(&self) -> usize {
        self.backups.iter().map(Backup::len).sum()
    }
}

impl<'a> IntoIterator for &'a BackupSeries {
    type Item = &'a Backup;
    type IntoIter = std::slice::Iter<'a, Backup>;

    fn into_iter(self) -> Self::IntoIter {
        self.backups.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(fp: u64, size: u32) -> ChunkRecord {
        ChunkRecord::new(fp, size)
    }

    #[test]
    fn fingerprint_from_digest_le() {
        let digest = [1u8, 0, 0, 0, 0, 0, 0, 0, 0xff];
        assert_eq!(Fingerprint::from_digest(&digest).value(), 1);
    }

    #[test]
    fn fingerprint_round_trips_bytes() {
        let fp = Fingerprint(0x0123_4567_89ab_cdef);
        assert_eq!(Fingerprint::from_digest(&fp.to_bytes()), fp);
    }

    #[test]
    fn fingerprint_display_hex() {
        assert_eq!(Fingerprint(0xabc).to_string(), "0000000000000abc");
        assert_eq!(format!("{:?}", Fingerprint(0xabc)), "fp:0000000000000abc");
    }

    #[test]
    fn chunk_blocks_rounds_up() {
        assert_eq!(rec(1, 1).blocks(), 1);
        assert_eq!(rec(1, 16).blocks(), 1);
        assert_eq!(rec(1, 17).blocks(), 2);
        assert_eq!(rec(1, 8192).blocks(), 512);
        assert_eq!(rec(1, 0).blocks(), 0);
    }

    #[test]
    fn backup_basic_accounting() {
        let b = Backup::from_chunks("b1", vec![rec(1, 10), rec(2, 20), rec(1, 10)]);
        assert_eq!(b.len(), 3);
        assert_eq!(b.logical_bytes(), 40);
        assert_eq!(b.unique_count(), 2);
        assert!(!b.is_empty());
    }

    #[test]
    fn backup_collects_from_iterator() {
        let b: Backup = (0..5u64).map(|i| rec(i, 8)).collect();
        assert_eq!(b.len(), 5);
        assert_eq!(b.unique_count(), 5);
    }

    #[test]
    fn backup_extend() {
        let mut b = Backup::new("x");
        b.extend([rec(1, 1), rec(2, 2)]);
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn series_ordering_and_latest() {
        let mut s = BackupSeries::new("demo");
        assert!(s.is_empty());
        assert!(s.latest().is_none());
        s.push(Backup::from_chunks("old", vec![rec(1, 1)]));
        s.push(Backup::from_chunks("new", vec![rec(2, 2), rec(3, 3)]));
        assert_eq!(s.len(), 2);
        assert_eq!(s.latest().unwrap().label, "new");
        assert_eq!(s.get(0).unwrap().label, "old");
        assert_eq!(s.logical_bytes(), 6);
        assert_eq!(s.logical_chunks(), 3);
    }

    #[test]
    fn backup_iterates_in_logical_order() {
        let b = Backup::from_chunks("b", vec![rec(3, 1), rec(1, 1), rec(2, 1)]);
        let order: Vec<u64> = b.iter().map(|c| c.fp.value()).collect();
        assert_eq!(order, vec![3, 1, 2]);
    }
}
