//! Deterministic sharded parallel execution primitives.
//!
//! Every parallel stage in the workspace — dense `COUNT` and the CSR
//! neighbour-table build in `freqdedup-core`, batch trace encryption in
//! `freqdedup-mle`, sharded ingest in `freqdedup-store` — is built on the
//! helpers in this module. They share one discipline that makes parallel
//! output **bit-identical** to sequential output at any thread count:
//!
//! 1. work is split into *contiguous index shards* ([`shard_ranges`]);
//! 2. each shard is processed independently on a scoped worker thread
//!    ([`std::thread::scope`] — no detached threads, no channels, no
//!    shared mutable state);
//! 3. shard results are merged **in shard-index order** on the calling
//!    thread ([`par_shards`], [`par_map`], [`par_fold`]).
//!
//! Because the merge order is the shard order and shard boundaries are a
//! pure function of `(len, shards)`, the only way thread count can leak
//! into a result is if the *per-shard computation itself* is
//! boundary-sensitive. Callers that fold across shard boundaries (e.g.
//! the CSR build) must therefore shard on a key that makes per-shard
//! results concatenable — see `freqdedup_core::dense` for the worked
//! argument.
//!
//! The module lives in `freqdedup-trace` (the workspace's base crate) so
//! that `mle` and `store` — which `core` depends on — can use it without a
//! dependency cycle; `freqdedup_core::par` re-exports it as the canonical
//! public surface.

use std::num::NonZeroUsize;
use std::ops::Range;

/// Thread-count knob shared by every parallel stage.
///
/// `threads == 0` means "auto": resolve to the machine's available
/// parallelism at call time. `threads == 1` is the sequential path (no
/// worker threads are spawned at all). Any other value is used verbatim.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ParConfig {
    /// Requested worker threads; `0` = auto-detect.
    pub threads: usize,
}

impl ParConfig {
    /// Sequential execution (one thread, nothing spawned).
    #[must_use]
    pub const fn sequential() -> Self {
        ParConfig { threads: 1 }
    }

    /// Auto-detected parallelism ([`std::thread::available_parallelism`]).
    #[must_use]
    pub const fn auto() -> Self {
        ParConfig { threads: 0 }
    }

    /// An explicit thread count (`0` = auto).
    #[must_use]
    pub const fn with_threads(threads: usize) -> Self {
        ParConfig { threads }
    }

    /// The effective thread count: `threads`, or the machine's available
    /// parallelism when `threads == 0` (falling back to 1 if detection
    /// fails).
    #[must_use]
    pub fn resolve(self) -> usize {
        if self.threads == 0 {
            std::thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(1)
        } else {
            self.threads
        }
    }
}

impl Default for ParConfig {
    /// Defaults to sequential: parallelism is opt-in everywhere.
    fn default() -> Self {
        Self::sequential()
    }
}

/// Splits `0..len` into at most `shards` contiguous, near-equal,
/// non-empty ranges (fewer when `len < shards`; empty when `len == 0`).
///
/// The split is a pure function of `(len, shards)`: the first
/// `len % shards` ranges hold one extra element.
#[must_use]
pub fn shard_ranges(len: usize, shards: usize) -> Vec<Range<usize>> {
    if len == 0 {
        return Vec::new();
    }
    let shards = shards.clamp(1, len);
    let base = len / shards;
    let rem = len % shards;
    let mut ranges = Vec::with_capacity(shards);
    let mut start = 0;
    for i in 0..shards {
        let size = base + usize::from(i < rem);
        ranges.push(start..start + size);
        start += size;
    }
    ranges
}

/// Runs `work(shard_index, range)` over the shards of `0..len` on up to
/// `threads` scoped worker threads and returns the results **in
/// shard-index order**.
///
/// With `threads <= 1` (or a single shard) everything runs inline on the
/// calling thread — the sequential path pays no spawn cost. Otherwise one
/// worker per shard is spawned ([`shard_ranges`] caps the shard count at
/// `threads`), shard 0 runs on the calling thread, and workers are joined
/// in order.
///
/// # Panics
///
/// Propagates a panic from any worker.
pub fn par_shards<R, F>(threads: usize, len: usize, work: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize, Range<usize>) -> R + Sync,
{
    let ranges = shard_ranges(len, threads.max(1));
    if ranges.len() <= 1 {
        return ranges
            .into_iter()
            .enumerate()
            .map(|(i, r)| work(i, r))
            .collect();
    }
    std::thread::scope(|scope| {
        let work = &work;
        let mut rest = ranges.iter().cloned().enumerate();
        let first = rest.next().expect("at least two shards");
        let handles: Vec<_> = rest.map(|(i, r)| scope.spawn(move || work(i, r))).collect();
        let mut out = Vec::with_capacity(ranges.len());
        out.push(work(first.0, first.1));
        for handle in handles {
            out.push(handle.join().expect("parallel shard worker panicked"));
        }
        out
    })
}

/// Applies `f` to every item and returns the outputs in item order —
/// sharded across up to `threads` workers, merged by index.
pub fn par_map<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let mut out = Vec::with_capacity(items.len());
    for shard in par_shards(threads, items.len(), |_, range| {
        items[range].iter().map(&f).collect::<Vec<R>>()
    }) {
        out.extend(shard);
    }
    out
}

/// Folds the shards of `0..len`: `shard(range)` produces one accumulator
/// per shard in parallel, then `merge` combines them **in shard-index
/// order** starting from `init`.
pub fn par_fold<A, F, M>(threads: usize, len: usize, shard: F, merge: M, init: A) -> A
where
    A: Send,
    F: Fn(Range<usize>) -> A + Sync,
    M: FnMut(A, A) -> A,
{
    par_shards(threads, len, |_, range| shard(range))
        .into_iter()
        .fold(init, merge)
}

/// Runs `work(index, &mut item)` for every item, at most `threads`
/// concurrently (items are grouped into contiguous index runs, one scoped
/// worker per run).
///
/// Used for shard-owned mutable state — e.g. one `DedupEngine` per
/// fingerprint-prefix shard — where each worker owns its items exclusively
/// for the duration of the call.
///
/// # Panics
///
/// Propagates a panic from any worker.
pub fn par_for_each_mut<T, F>(threads: usize, items: &mut [T], work: F)
where
    T: Send,
    F: Fn(usize, &mut T) + Sync,
{
    let ranges = shard_ranges(items.len(), threads.max(1));
    if ranges.len() <= 1 {
        for (i, item) in items.iter_mut().enumerate() {
            work(i, item);
        }
        return;
    }
    std::thread::scope(|scope| {
        let work = &work;
        let mut rest = items;
        let mut offset = 0;
        for range in ranges {
            let (group, tail) = rest.split_at_mut(range.len());
            rest = tail;
            let base = offset;
            offset += range.len();
            scope.spawn(move || {
                for (i, item) in group.iter_mut().enumerate() {
                    work(base + i, item);
                }
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_thread_counts() {
        assert_eq!(ParConfig::sequential().resolve(), 1);
        assert_eq!(ParConfig::with_threads(7).resolve(), 7);
        assert!(ParConfig::auto().resolve() >= 1);
        assert_eq!(ParConfig::default(), ParConfig::sequential());
    }

    #[test]
    fn shard_ranges_cover_exactly() {
        for len in [0usize, 1, 2, 7, 100, 101] {
            for shards in [1usize, 2, 3, 8, 200] {
                let ranges = shard_ranges(len, shards);
                if len == 0 {
                    assert!(ranges.is_empty());
                    continue;
                }
                assert!(ranges.len() <= shards.max(1));
                assert_eq!(ranges[0].start, 0);
                assert_eq!(ranges.last().unwrap().end, len);
                for w in ranges.windows(2) {
                    assert_eq!(w[0].end, w[1].start, "contiguous");
                    assert!(!w[0].is_empty() && !w[1].is_empty());
                }
                // Near-equal: sizes differ by at most one.
                let sizes: Vec<usize> = ranges
                    .iter()
                    .map(std::iter::ExactSizeIterator::len)
                    .collect();
                let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
                assert!(max - min <= 1);
            }
        }
    }

    #[test]
    fn par_map_preserves_item_order() {
        let items: Vec<u64> = (0..1000).collect();
        for threads in [1usize, 2, 3, 8] {
            let out = par_map(threads, &items, |&x| x * 3);
            assert_eq!(out, items.iter().map(|x| x * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn par_shards_merge_in_shard_order() {
        for threads in [1usize, 2, 5] {
            let shards = par_shards(threads, 50, |i, range| (i, range));
            for (expect, (i, _)) in shards.iter().enumerate() {
                assert_eq!(expect, *i);
            }
            let glued: Vec<usize> = shards.iter().flat_map(|(_, r)| r.clone()).collect();
            assert_eq!(glued, (0..50).collect::<Vec<_>>());
        }
    }

    #[test]
    fn par_fold_deterministic_merge() {
        let data: Vec<u64> = (1..=100).collect();
        for threads in [1usize, 2, 4, 16] {
            let sum = par_fold(
                threads,
                data.len(),
                |range| data[range].iter().sum::<u64>(),
                |a, b| a + b,
                0u64,
            );
            assert_eq!(sum, 5050);
        }
    }

    #[test]
    fn par_for_each_mut_touches_every_item_once() {
        for threads in [1usize, 2, 4, 9] {
            let mut items = vec![0u64; 33];
            par_for_each_mut(threads, &mut items, |i, item| *item += i as u64 + 1);
            let expect: Vec<u64> = (1..=33).collect();
            assert_eq!(items, expect);
        }
    }

    #[test]
    fn empty_inputs_are_no_ops() {
        let out: Vec<u32> = par_map(4, &[] as &[u32], |&x| x);
        assert!(out.is_empty());
        assert_eq!(par_fold(4, 0, |_| 1u32, |a, b| a + b, 0), 0);
        let mut empty: [u8; 0] = [];
        par_for_each_mut(4, &mut empty, |_, _| unreachable!());
    }
}
