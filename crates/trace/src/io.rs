//! Compact binary trace format (versioned + CRC-32 checksummed).
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic    b"FQDT"                     4 bytes
//! version  u16                         2 bytes
//! name     u32 length + UTF-8 bytes
//! count    u32 number of backups
//! backup*  label (u32 len + bytes), u64 chunk count,
//!          then per chunk: u64 fingerprint, u32 size
//! crc      u32 CRC-32 (IEEE) of everything before it
//! ```
//!
//! The format exists so generated datasets can be cached on disk and reloaded
//! by the experiment binaries without regeneration.

use std::fmt;
use std::io::{Read, Write};

use crate::{Backup, BackupSeries, ChunkRecord, Fingerprint};

const MAGIC: &[u8; 4] = b"FQDT";
const VERSION: u16 = 1;

/// Errors produced by trace (de)serialization.
#[derive(Debug)]
pub enum TraceIoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The magic bytes did not match.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u16),
    /// CRC mismatch: the file is corrupt or truncated.
    BadChecksum {
        /// Checksum stored in the file.
        expected: u32,
        /// Checksum computed over the payload read.
        actual: u32,
    },
    /// A length field exceeded sane bounds.
    LengthOverflow(u64),
    /// A label or name was not valid UTF-8.
    BadUtf8,
}

impl fmt::Display for TraceIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceIoError::Io(e) => write!(f, "i/o error: {e}"),
            TraceIoError::BadMagic => write!(f, "not a freqdedup trace file"),
            TraceIoError::BadVersion(v) => write!(f, "unsupported trace version {v}"),
            TraceIoError::BadChecksum { expected, actual } => write!(
                f,
                "trace checksum mismatch (expected {expected:#010x}, got {actual:#010x})"
            ),
            TraceIoError::LengthOverflow(n) => write!(f, "length field {n} exceeds limits"),
            TraceIoError::BadUtf8 => write!(f, "label is not valid utf-8"),
        }
    }
}

impl std::error::Error for TraceIoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceIoError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for TraceIoError {
    fn from(e: std::io::Error) -> Self {
        TraceIoError::Io(e)
    }
}

/// CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320).
#[derive(Clone, Debug)]
pub struct Crc32 {
    state: u32,
}

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xedb8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc32_table();

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// Creates a fresh CRC computation.
    #[must_use]
    pub fn new() -> Self {
        Crc32 { state: 0xffff_ffff }
    }

    /// Absorbs bytes.
    pub fn update(&mut self, data: &[u8]) {
        for &b in data {
            let idx = ((self.state ^ u32::from(b)) & 0xff) as usize;
            self.state = CRC_TABLE[idx] ^ (self.state >> 8);
        }
    }

    /// Returns the checksum.
    #[must_use]
    pub fn finalize(&self) -> u32 {
        self.state ^ 0xffff_ffff
    }
}

/// One-shot CRC-32.
#[must_use]
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(data);
    c.finalize()
}

struct CrcWriter<W> {
    inner: W,
    crc: Crc32,
}

impl<W: Write> CrcWriter<W> {
    fn write_all(&mut self, data: &[u8]) -> Result<(), TraceIoError> {
        self.crc.update(data);
        self.inner.write_all(data)?;
        Ok(())
    }

    fn write_u16(&mut self, v: u16) -> Result<(), TraceIoError> {
        self.write_all(&v.to_le_bytes())
    }

    fn write_u32(&mut self, v: u32) -> Result<(), TraceIoError> {
        self.write_all(&v.to_le_bytes())
    }

    fn write_u64(&mut self, v: u64) -> Result<(), TraceIoError> {
        self.write_all(&v.to_le_bytes())
    }

    fn write_str(&mut self, s: &str) -> Result<(), TraceIoError> {
        let len =
            u32::try_from(s.len()).map_err(|_| TraceIoError::LengthOverflow(s.len() as u64))?;
        self.write_u32(len)?;
        self.write_all(s.as_bytes())
    }
}

struct CrcReader<R> {
    inner: R,
    crc: Crc32,
}

impl<R: Read> CrcReader<R> {
    fn read_exact(&mut self, buf: &mut [u8]) -> Result<(), TraceIoError> {
        self.inner.read_exact(buf)?;
        self.crc.update(buf);
        Ok(())
    }

    fn read_u16(&mut self) -> Result<u16, TraceIoError> {
        let mut b = [0u8; 2];
        self.read_exact(&mut b)?;
        Ok(u16::from_le_bytes(b))
    }

    fn read_u32(&mut self) -> Result<u32, TraceIoError> {
        let mut b = [0u8; 4];
        self.read_exact(&mut b)?;
        Ok(u32::from_le_bytes(b))
    }

    fn read_u64(&mut self) -> Result<u64, TraceIoError> {
        let mut b = [0u8; 8];
        self.read_exact(&mut b)?;
        Ok(u64::from_le_bytes(b))
    }

    fn read_str(&mut self) -> Result<String, TraceIoError> {
        let len = self.read_u32()? as usize;
        if len > 1 << 20 {
            return Err(TraceIoError::LengthOverflow(len as u64));
        }
        let mut buf = vec![0u8; len];
        self.read_exact(&mut buf)?;
        String::from_utf8(buf).map_err(|_| TraceIoError::BadUtf8)
    }
}

/// Serializes a series into `writer`.
///
/// # Errors
///
/// Returns [`TraceIoError::Io`] on write failure or
/// [`TraceIoError::LengthOverflow`] for absurd label lengths.
pub fn write_series<W: Write>(series: &BackupSeries, writer: W) -> Result<(), TraceIoError> {
    let mut w = CrcWriter {
        inner: writer,
        crc: Crc32::new(),
    };
    w.write_all(MAGIC)?;
    w.write_u16(VERSION)?;
    w.write_str(&series.name)?;
    let count = u32::try_from(series.len())
        .map_err(|_| TraceIoError::LengthOverflow(series.len() as u64))?;
    w.write_u32(count)?;
    for backup in series {
        w.write_str(&backup.label)?;
        w.write_u64(backup.len() as u64)?;
        for rec in backup {
            w.write_u64(rec.fp.value())?;
            w.write_u32(rec.size)?;
        }
    }
    let crc = w.crc.finalize();
    w.inner.write_all(&crc.to_le_bytes())?;
    Ok(())
}

/// Deserializes a series from `reader`, verifying magic, version and CRC.
///
/// # Errors
///
/// Returns the corresponding [`TraceIoError`] variant on malformed input.
pub fn read_series<R: Read>(reader: R) -> Result<BackupSeries, TraceIoError> {
    let mut r = CrcReader {
        inner: reader,
        crc: Crc32::new(),
    };
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(TraceIoError::BadMagic);
    }
    let version = r.read_u16()?;
    if version != VERSION {
        return Err(TraceIoError::BadVersion(version));
    }
    let name = r.read_str()?;
    let count = r.read_u32()?;
    let mut series = BackupSeries::new(name);
    for _ in 0..count {
        let label = r.read_str()?;
        let n = r.read_u64()?;
        if n > 1 << 40 {
            return Err(TraceIoError::LengthOverflow(n));
        }
        let mut backup = Backup::new(label);
        backup.chunks.reserve(n as usize);
        for _ in 0..n {
            let fp = r.read_u64()?;
            let size = r.read_u32()?;
            backup.push(ChunkRecord::new(Fingerprint(fp), size));
        }
        series.push(backup);
    }
    let actual = r.crc.finalize();
    let mut crc_bytes = [0u8; 4];
    r.inner.read_exact(&mut crc_bytes)?;
    let expected = u32::from_le_bytes(crc_bytes);
    if expected != actual {
        return Err(TraceIoError::BadChecksum { expected, actual });
    }
    Ok(series)
}

/// Serializes a series to an in-memory byte vector.
#[must_use]
pub fn to_bytes(series: &BackupSeries) -> Vec<u8> {
    let mut buf = Vec::new();
    write_series(series, &mut buf).expect("in-memory write cannot fail");
    buf
}

/// Deserializes a series from a byte slice.
///
/// # Errors
///
/// See [`read_series`].
pub fn from_bytes(bytes: &[u8]) -> Result<BackupSeries, TraceIoError> {
    read_series(bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_series() -> BackupSeries {
        let mut s = BackupSeries::new("unit");
        s.push(Backup::from_chunks(
            "b0",
            vec![
                ChunkRecord::new(1u64, 8192),
                ChunkRecord::new(2u64, 4096),
                ChunkRecord::new(1u64, 8192),
            ],
        ));
        s.push(Backup::from_chunks("b1", vec![ChunkRecord::new(3u64, 100)]));
        s
    }

    #[test]
    fn crc32_known_vector() {
        // Classic check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn round_trip() {
        let s = sample_series();
        let bytes = to_bytes(&s);
        let back = from_bytes(&bytes).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn round_trip_empty_series() {
        let s = BackupSeries::new("");
        let back = from_bytes(&to_bytes(&s)).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn rejects_bad_magic() {
        let mut bytes = to_bytes(&sample_series());
        bytes[0] = b'X';
        assert!(matches!(from_bytes(&bytes), Err(TraceIoError::BadMagic)));
    }

    #[test]
    fn rejects_bad_version() {
        let mut bytes = to_bytes(&sample_series());
        bytes[4] = 99;
        assert!(matches!(
            from_bytes(&bytes),
            Err(TraceIoError::BadVersion(99))
        ));
    }

    #[test]
    fn rejects_corruption() {
        let mut bytes = to_bytes(&sample_series());
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        match from_bytes(&bytes) {
            Err(TraceIoError::BadChecksum { .. }) => {}
            // Corruption in a length field may surface as a different error;
            // it must be an error either way.
            Err(_) => {}
            Ok(_) => panic!("corrupted trace deserialized successfully"),
        }
    }

    #[test]
    fn rejects_truncation() {
        let bytes = to_bytes(&sample_series());
        let truncated = &bytes[..bytes.len() - 1];
        assert!(from_bytes(truncated).is_err());
    }

    #[test]
    fn error_display_readable() {
        let e = TraceIoError::BadChecksum {
            expected: 1,
            actual: 2,
        };
        let msg = e.to_string();
        assert!(msg.contains("checksum"));
    }
}
