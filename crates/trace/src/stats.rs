//! Trace statistics: frequency distributions (Fig. 1), deduplication ratios,
//! storage savings, and chunk-locality measurements.

use std::collections::{HashMap, HashSet};

use crate::{Backup, BackupSeries, Fingerprint};

/// Counts how many times each fingerprint occurs in a backup
/// (the `COUNT` step of the paper's Algorithm 1, frequency part only).
#[must_use]
pub fn frequency_map(backup: &Backup) -> HashMap<Fingerprint, u64> {
    let mut map = HashMap::with_capacity(backup.len());
    for record in backup {
        *map.entry(record.fp).or_insert(0) += 1;
    }
    map
}

/// The frequency distribution of chunks, as plotted in the paper's Figure 1
/// ("frequency distributions of chunks with duplicate content").
///
/// Holds the per-unique-chunk occurrence counts in ascending order, from
/// which CDF points `(cdf ∈ [0,1], frequency)` can be read.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FrequencyCdf {
    /// Occurrence count of every unique chunk, ascending.
    freqs: Vec<u64>,
}

impl FrequencyCdf {
    /// Builds the distribution over all unique chunks of `backups`.
    ///
    /// When `duplicates_only` is set, chunks occurring exactly once are
    /// excluded — this is Figure 1's "chunks with duplicate content".
    #[must_use]
    pub fn from_backups<'a, I>(backups: I, duplicates_only: bool) -> Self
    where
        I: IntoIterator<Item = &'a Backup>,
    {
        let mut counts: HashMap<Fingerprint, u64> = HashMap::new();
        for backup in backups {
            for record in backup {
                *counts.entry(record.fp).or_insert(0) += 1;
            }
        }
        let mut freqs: Vec<u64> = counts
            .into_values()
            .filter(|&f| !duplicates_only || f > 1)
            .collect();
        freqs.sort_unstable();
        FrequencyCdf { freqs }
    }

    /// Number of unique chunks covered.
    #[must_use]
    pub fn len(&self) -> usize {
        self.freqs.len()
    }

    /// Whether the distribution is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.freqs.is_empty()
    }

    /// The frequency at CDF position `q` (0 ≤ q ≤ 1), i.e. the occurrence
    /// count such that a fraction `q` of unique chunks occur at most that
    /// often. Returns `None` on an empty distribution.
    #[must_use]
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.freqs.is_empty() {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let idx = ((self.freqs.len() as f64 - 1.0) * q).round() as usize;
        Some(self.freqs[idx])
    }

    /// Fraction of unique chunks occurring strictly more than `threshold`
    /// times (e.g. the paper's "0.00007% of chunks occur over 10,000 times").
    #[must_use]
    pub fn fraction_above(&self, threshold: u64) -> f64 {
        if self.freqs.is_empty() {
            return 0.0;
        }
        let above = self.freqs.partition_point(|&f| f <= threshold);
        (self.freqs.len() - above) as f64 / self.freqs.len() as f64
    }

    /// Evenly spaced `(cdf, frequency)` points suitable for plotting Fig. 1.
    #[must_use]
    pub fn points(&self, n: usize) -> Vec<(f64, u64)> {
        if self.freqs.is_empty() || n == 0 {
            return Vec::new();
        }
        (0..n)
            .map(|i| {
                let q = i as f64 / (n - 1).max(1) as f64;
                (q, self.quantile(q).expect("non-empty"))
            })
            .collect()
    }

    /// The maximum chunk frequency.
    #[must_use]
    pub fn max_frequency(&self) -> u64 {
        self.freqs.last().copied().unwrap_or(0)
    }
}

/// Cumulative deduplication accounting over a series of backups, matching the
/// paper's storage-saving measurements (Fig. 11): backups are added in
/// creation order and after each backup the logical vs. physical byte totals
/// are recorded.
#[derive(Clone, Debug, Default)]
pub struct DedupAccumulator {
    seen: HashSet<Fingerprint>,
    logical_bytes: u64,
    physical_bytes: u64,
}

impl DedupAccumulator {
    /// Creates an empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Ingests one backup; every fingerprint not seen before in the whole
    /// history is stored physically.
    pub fn add_backup(&mut self, backup: &Backup) {
        for record in backup {
            self.logical_bytes += u64::from(record.size);
            if self.seen.insert(record.fp) {
                self.physical_bytes += u64::from(record.size);
            }
        }
    }

    /// Logical bytes ingested so far.
    #[must_use]
    pub fn logical_bytes(&self) -> u64 {
        self.logical_bytes
    }

    /// Physical bytes stored so far (after deduplication).
    #[must_use]
    pub fn physical_bytes(&self) -> u64 {
        self.physical_bytes
    }

    /// Number of unique chunks stored.
    #[must_use]
    pub fn unique_chunks(&self) -> usize {
        self.seen.len()
    }

    /// Storage saving so far: `1 - physical/logical` (in `[0,1]`).
    /// Returns 0 when nothing has been ingested.
    #[must_use]
    pub fn storage_saving(&self) -> f64 {
        if self.logical_bytes == 0 {
            0.0
        } else {
            1.0 - self.physical_bytes as f64 / self.logical_bytes as f64
        }
    }

    /// Deduplication ratio so far: `logical/physical`.
    /// Returns 1 when nothing has been stored.
    #[must_use]
    pub fn dedup_ratio(&self) -> f64 {
        if self.physical_bytes == 0 {
            1.0
        } else {
            self.logical_bytes as f64 / self.physical_bytes as f64
        }
    }
}

/// Overall deduplication ratio of a whole series (logical bytes over unique
/// bytes), e.g. the paper's "the overall deduplication ratio is 7.6x".
#[must_use]
pub fn dedup_ratio(series: &BackupSeries) -> f64 {
    let mut acc = DedupAccumulator::new();
    for backup in series {
        acc.add_backup(backup);
    }
    acc.dedup_ratio()
}

/// Measures chunk locality between two adjacent backup versions: the fraction
/// of adjacent fingerprint pairs `(a, b)` in `newer` that also appear as an
/// adjacent pair in `older`.
///
/// This is the property the locality-based attack exploits (§4.2: "chunks are
/// likely to re-occur together with their neighboring chunks across different
/// versions of backups"); the dataset generators are calibrated against it.
#[must_use]
pub fn locality_overlap(older: &Backup, newer: &Backup) -> f64 {
    if newer.len() < 2 {
        return 0.0;
    }
    let mut old_pairs: HashSet<(Fingerprint, Fingerprint)> = HashSet::new();
    for w in older.chunks.windows(2) {
        old_pairs.insert((w[0].fp, w[1].fp));
    }
    let mut hits = 0usize;
    let mut total = 0usize;
    for w in newer.chunks.windows(2) {
        total += 1;
        if old_pairs.contains(&(w[0].fp, w[1].fp)) {
            hits += 1;
        }
    }
    hits as f64 / total as f64
}

/// Fraction of `newer`'s unique fingerprints that already exist in `older`
/// (content redundancy between versions).
#[must_use]
pub fn content_overlap(older: &Backup, newer: &Backup) -> f64 {
    let new_unique = newer.unique_fingerprints();
    if new_unique.is_empty() {
        return 0.0;
    }
    let old_unique = older.unique_fingerprints();
    let shared = new_unique
        .iter()
        .filter(|fp| old_unique.contains(fp))
        .count();
    shared as f64 / new_unique.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ChunkRecord;

    fn rec(fp: u64, size: u32) -> ChunkRecord {
        ChunkRecord::new(fp, size)
    }

    fn backup(fps: &[u64]) -> Backup {
        Backup::from_chunks("t", fps.iter().map(|&f| rec(f, 8)).collect())
    }

    #[test]
    fn frequency_map_counts_duplicates() {
        let b = backup(&[1, 2, 1, 1, 3]);
        let f = frequency_map(&b);
        assert_eq!(f[&Fingerprint(1)], 3);
        assert_eq!(f[&Fingerprint(2)], 1);
        assert_eq!(f[&Fingerprint(3)], 1);
    }

    #[test]
    fn cdf_duplicates_only_excludes_singletons() {
        let b = backup(&[1, 1, 2, 3, 3, 3]);
        let all = FrequencyCdf::from_backups([&b], false);
        let dups = FrequencyCdf::from_backups([&b], true);
        assert_eq!(all.len(), 3);
        assert_eq!(dups.len(), 2);
        assert_eq!(dups.max_frequency(), 3);
    }

    #[test]
    fn cdf_quantiles_monotone() {
        let b = backup(&[1, 1, 1, 1, 2, 2, 3]);
        let cdf = FrequencyCdf::from_backups([&b], false);
        assert_eq!(cdf.quantile(0.0), Some(1));
        assert_eq!(cdf.quantile(1.0), Some(4));
        let pts = cdf.points(5);
        assert_eq!(pts.len(), 5);
        for w in pts.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
    }

    #[test]
    fn cdf_fraction_above() {
        let b = backup(&[1, 1, 1, 2, 3]);
        let cdf = FrequencyCdf::from_backups([&b], false);
        // freqs = [1,1,3]; above 1 → only the chunk with freq 3.
        assert!((cdf.fraction_above(1) - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(cdf.fraction_above(3), 0.0);
    }

    #[test]
    fn cdf_empty() {
        let cdf = FrequencyCdf::from_backups(std::iter::empty(), false);
        assert!(cdf.is_empty());
        assert_eq!(cdf.quantile(0.5), None);
        assert_eq!(cdf.fraction_above(0), 0.0);
        assert!(cdf.points(3).is_empty());
    }

    #[test]
    fn accumulator_cross_backup_dedup() {
        let mut acc = DedupAccumulator::new();
        acc.add_backup(&backup(&[1, 2, 3]));
        assert_eq!(acc.physical_bytes(), 24);
        acc.add_backup(&backup(&[1, 2, 4]));
        assert_eq!(acc.logical_bytes(), 48);
        assert_eq!(acc.physical_bytes(), 32); // only fp 4 is new
        assert_eq!(acc.unique_chunks(), 4);
        assert!((acc.dedup_ratio() - 1.5).abs() < 1e-12);
        assert!((acc.storage_saving() - (1.0 - 32.0 / 48.0)).abs() < 1e-12);
    }

    #[test]
    fn accumulator_empty_is_neutral() {
        let acc = DedupAccumulator::new();
        assert_eq!(acc.storage_saving(), 0.0);
        assert_eq!(acc.dedup_ratio(), 1.0);
    }

    #[test]
    fn dedup_ratio_of_series() {
        let mut s = BackupSeries::new("s");
        s.push(backup(&[1, 2]));
        s.push(backup(&[1, 2]));
        assert!((dedup_ratio(&s) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn locality_overlap_full_and_none() {
        let a = backup(&[1, 2, 3, 4]);
        assert!((locality_overlap(&a, &a) - 1.0).abs() < 1e-12);
        let b = backup(&[4, 3, 2, 1]);
        assert_eq!(locality_overlap(&a, &b), 0.0);
    }

    #[test]
    fn locality_overlap_partial() {
        let old = backup(&[1, 2, 3, 4, 5]);
        // Pairs kept: (1,2) (4,5). Pairs (2,9),(9,4) are new.
        let new = backup(&[1, 2, 9, 4, 5]);
        assert!((locality_overlap(&old, &new) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn locality_overlap_degenerate() {
        assert_eq!(locality_overlap(&backup(&[1]), &backup(&[1])), 0.0);
        assert_eq!(locality_overlap(&backup(&[]), &backup(&[])), 0.0);
    }

    #[test]
    fn content_overlap_counts_unique_share() {
        let old = backup(&[1, 2, 3]);
        let new = backup(&[2, 3, 4, 4]);
        // unique(new) = {2,3,4}; shared = {2,3}.
        assert!((content_overlap(&old, &new) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(content_overlap(&old, &backup(&[])), 0.0);
    }
}
